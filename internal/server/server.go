// Package server implements the DBWipes web frontend: a JSON API plus an
// embedded single-page dashboard with the paper's four components —
// query input form, result scatterplot with suspect/example selection,
// error metric form, and the ranked predicate list whose entries can be
// clicked to clean the database and automatically re-run the query
// (Figure 2 of the paper).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/predicate"
	"repro/internal/sqlparse"
	"repro/internal/store"
)

// Server serves the DBWipes dashboard over one engine database.
type Server struct {
	db *engine.DB
	// st, when attached, routes ingest-side mutations (/api/append,
	// /api/retention) through the durable store so they are crash-safe;
	// queries keep reading the engine catalog directly.
	st *store.DB

	// maxSessions and sessionTTL bound the session map (LRU count cap
	// and idle expiry); zero values take the defaults below.
	maxSessions int
	sessionTTL  time.Duration
	// maxBodyBytes caps POST request bodies (413 beyond it); zero takes
	// the default below.
	maxBodyBytes int64
	now          func() time.Time // test hook; defaults to time.Now

	// lc is the request-lifecycle layer: deadlines, admission control,
	// shedding and per-endpoint counters (lifecycle.go).
	lc *lifecycle

	// Out-of-core scan accounting, accumulated from each executed
	// query's Result.Plan and reported by /api/stats alongside the
	// store's buffer-pool counters.
	scanQueries    atomic.Int64
	segsSkipped    atomic.Int64
	chunksFaulted  atomic.Int64
	chunksResident atomic.Int64
	// Planner accounting: queries whose WHERE was a greedily reordered
	// AND chain, and conjuncts never materialized because the running
	// mask emptied first (filter.go greedy ordering), plus advances
	// that merged into the carried ORDER BY order instead of
	// re-sorting.
	filtersOrdered   atomic.Int64
	conjunctsSkipped atomic.Int64
	sortsCarried     atomic.Int64
	// Residual accounting: queries whose WHERE kept non-lowerable
	// conjuncts on the vectorized path (evaluated per row only on the
	// lowered mask's survivors), and how many per-row evaluations those
	// survivors amounted to.
	filtersResidual atomic.Int64
	residualRows    atomic.Int64

	mu       sync.Mutex
	sessions map[string]*session
}

// recordScan folds one executed query's plan counters into the
// server-wide scan totals.
func (s *Server) recordScan(p exec.PlanInfo) {
	s.scanQueries.Add(1)
	s.segsSkipped.Add(int64(p.SegsSkipped))
	s.chunksFaulted.Add(int64(p.ChunksFaulted))
	s.chunksResident.Add(int64(p.ChunksResident))
	if p.FilterConjuncts > 0 {
		s.filtersOrdered.Add(1)
		s.conjunctsSkipped.Add(int64(p.FilterShortCircuited))
	}
	if p.ResidualConjuncts > 0 {
		s.filtersResidual.Add(1)
		s.residualRows.Add(int64(p.ResidualRows))
	}
	if p.SortCarried {
		s.sortsCarried.Add(1)
	}
}

const (
	defaultMaxSessions  = 1024
	defaultSessionTTL   = 2 * time.Hour
	defaultMaxBodyBytes = 8 << 20 // generous for row batches, stops runaways
)

// session is one browser's interactive state. Handlers hold the
// session lock across their whole body: two concurrent requests on one
// session id would otherwise race on sql/res/applied/lastDbg (e.g.
// handleClean's append-then-rollback truncation against a concurrent
// query). The lock is a one-slot channel rather than a mutex so
// acquisition is bounded by the request's context (see acquire in
// lifecycle.go): a fired deadline returns 504 instead of queueing on
// a wedged session forever.
type session struct {
	lockCh  chan struct{}
	sql     string
	res     *exec.Result
	resKey  string                // sql + applied predicates res was computed under
	applied []predicate.Predicate // cleaning history (clicked predicates)
	lastDbg *core.DebugResult

	// lastUsed is guarded by Server.mu (not session.mu): eviction scans
	// it while handlers hold individual session locks.
	lastUsed time.Time
}

func newSession() *session { return &session{lockCh: make(chan struct{}, 1)} }

// New creates a server over db.
func New(db *engine.DB) *Server {
	return &Server{db: db, sessions: make(map[string]*session), lc: newLifecycle(Limits{})}
}

// AttachStore routes ingest mutations through st: /api/append and
// /api/retention become durable (WAL'd, crash-recoverable), /api/stats
// gains the store's durability report, and Close closes the store.
// Tables registered in the engine but not managed by the store (e.g.
// in-memory demo data) keep the plain engine path.
func (s *Server) AttachStore(st *store.DB) { s.st = st }

// Close flushes and closes the attached store, surfacing fsync/close
// failures — an error here means an acknowledged batch may not be
// durable, which callers must report, not swallow. Without an attached
// store it is a no-op.
func (s *Server) Close() error {
	if s.st != nil {
		return s.st.Close()
	}
	return nil
}

// SetMaxBodyBytes overrides the POST body cap; zero or negative keeps
// the current value.
func (s *Server) SetMaxBodyBytes(n int64) {
	if n > 0 {
		s.maxBodyBytes = n
	}
}

// SetSessionLimits overrides the session-map bounds (count cap and idle
// TTL); zero keeps the current value. For tests and embedders.
func (s *Server) SetSessionLimits(max int, ttl time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if max > 0 {
		s.maxSessions = max
	}
	if ttl > 0 {
		s.sessionTTL = ttl
	}
}

// Handler returns the HTTP handler (mountable under any mux). Every
// /api route runs inside the lifecycle layer: query/debug/clean/reset
// are heavy (admission-controlled, sheddable), suggest/zoom and the
// GET endpoints are light, append/retention are ingest (deadline but
// never queued — shedding a batch the client already buffered would
// just move the retry upstream).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("GET /api/tables", s.withLifecycle("tables", classLight, s.handleTables))
	mux.HandleFunc("GET /api/metrics", s.withLifecycle("metrics", classLight, s.handleMetrics))
	mux.HandleFunc("POST /api/query", s.withLifecycle("query", classHeavy, s.handleQuery))
	mux.HandleFunc("POST /api/suggest", s.withLifecycle("suggest", classLight, s.handleSuggest))
	mux.HandleFunc("POST /api/zoom", s.withLifecycle("zoom", classLight, s.handleZoom))
	mux.HandleFunc("POST /api/debug", s.withLifecycle("debug", classHeavy, s.handleDebug))
	mux.HandleFunc("POST /api/clean", s.withLifecycle("clean", classHeavy, s.handleClean))
	mux.HandleFunc("POST /api/reset", s.withLifecycle("reset", classHeavy, s.handleReset))
	mux.HandleFunc("POST /api/append", s.withLifecycle("append", classIngest, s.handleAppend))
	mux.HandleFunc("POST /api/retention", s.withLifecycle("retention", classIngest, s.handleRetention))
	mux.HandleFunc("GET /api/stats", s.withLifecycle("stats", classLight, s.handleStats))
	return withRecovery(mux)
}

// decodeJSON decodes a POST body into v under the server's size cap,
// writing the error response (413 on an oversized body, 400 otherwise)
// and returning false when the request cannot proceed.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	limit := s.maxBodyBytes
	if limit <= 0 {
		limit = defaultMaxBodyBytes
	}
	body := http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d byte limit", tooBig.Limit))
		} else {
			writeErr(w, http.StatusBadRequest, err)
		}
		return false
	}
	return true
}

// session returns (creating if needed) the session for id, stamping its
// recency and evicting expired / least-recently-used entries so the map
// stays bounded under many-users traffic. The caller must lock the
// returned session's mu before touching its state.
func (s *Server) session(id string) *session {
	if id == "" {
		id = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	if s.now != nil {
		now = s.now()
	}
	ttl := s.sessionTTL
	if ttl <= 0 {
		ttl = defaultSessionTTL
	}
	max := s.maxSessions
	if max <= 0 {
		max = defaultMaxSessions
	}
	sess, ok := s.sessions[id]
	if !ok {
		sess = newSession()
		s.sessions[id] = sess
	}
	sess.lastUsed = now

	// TTL sweep: drop idle sessions. Evicting only removes the map
	// entry; a handler still holding the session finishes unharmed and
	// a later request simply starts a fresh session.
	for k, v := range s.sessions {
		if k != id && now.Sub(v.lastUsed) > ttl {
			delete(s.sessions, k)
		}
	}
	// LRU cap: evict the least recently used until under the bound.
	for len(s.sessions) > max {
		var oldest string
		var oldestAt time.Time
		first := true
		for k, v := range s.sessions {
			if k == id {
				continue
			}
			if first || v.lastUsed.Before(oldestAt) {
				oldest, oldestAt, first = k, v.lastUsed, false
			}
		}
		if first {
			break // only the current session remains
		}
		delete(s.sessions, oldest)
	}
	return sess
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashboardHTML))
}

func (s *Server) handleTables(w http.ResponseWriter, _ *http.Request) {
	type col struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	out := map[string][]col{}
	for _, name := range s.db.Names() {
		t, err := s.db.Table(name)
		if err != nil {
			continue
		}
		var cols []col
		for _, c := range t.Schema() {
			cols = append(cols, col{c.Name, c.Type.String()})
		}
		out[name] = cols
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, errmetric.Specs())
}

// queryPayload is the shared response shape of /api/query and
// /api/clean.
type queryPayload struct {
	SQL       string   `json:"sql"`
	Columns   []string `json:"columns"`
	Types     []string `json:"types"`
	Rows      [][]any  `json:"rows"`
	AggCols   []int    `json:"aggCols"`
	Applied   []string `json:"applied"`
	Truncated bool     `json:"truncated"`
	// PCA holds the two-principal-component projection of the groups
	// (paper §2.2.1's proposed multi-attribute visualization), present
	// when the result has 3+ numeric columns; PCAExplained reports the
	// variance ratio captured by each axis.
	PCA          [][2]float64 `json:"pca,omitempty"`
	PCAExplained [2]float64   `json:"pcaExplained,omitempty"`
}

const maxRowsOut = 5000

func (s *Server) buildPayload(sess *session) *queryPayload {
	res := sess.res
	p := &queryPayload{SQL: sess.sql, AggCols: res.AggOrdinals()}
	for _, c := range res.Table.Schema() {
		p.Columns = append(p.Columns, c.Name)
		p.Types = append(p.Types, c.Type.String())
	}
	n := res.Table.NumRows()
	if n > maxRowsOut {
		n = maxRowsOut
		p.Truncated = true
	}
	for i := 0; i < n; i++ {
		row := res.Table.Row(i)
		jsRow := make([]any, len(row))
		for c, v := range row {
			jsRow[c] = valueJSON(v)
		}
		p.Rows = append(p.Rows, jsRow)
	}
	for _, ap := range sess.applied {
		p.Applied = append(p.Applied, ap.String())
	}
	// Multi-attribute results additionally get the paper's proposed
	// PCA view. Only computed for the rows actually shipped.
	numeric := 0
	for _, c := range res.Table.Schema() {
		if c.Type.IsNumeric() {
			numeric++
		}
	}
	if numeric >= 3 && !p.Truncated {
		if proj, explained, err := core.PCAGroups(res); err == nil {
			p.PCA = proj
			p.PCAExplained = explained
		}
	}
	return p
}

func valueJSON(v engine.Value) any {
	switch v.T {
	case engine.TNull:
		return nil
	case engine.TBool:
		return v.Bool()
	case engine.TInt:
		return v.I
	case engine.TFloat:
		return v.F
	case engine.TTime:
		return v.Time().Format("2006-01-02T15:04:05Z")
	default:
		return v.S
	}
}

// cleanKey identifies the (sql, applied predicates) pair a cached
// result was computed under; a re-query with the same key over a grown
// version of the same source table can advance incrementally.
func cleanKey(sql string, applied []predicate.Predicate) string {
	var b strings.Builder
	b.WriteString(sql)
	for _, p := range applied {
		b.WriteString("\x1f")
		b.WriteString(p.String())
	}
	return b.String()
}

// runWithCleaning executes sql with the session's cleaning predicates
// appended as WHERE NOT (...) conjuncts. When the statement and
// cleaning set are unchanged and the source table has only grown (the
// streaming /api/append path), the cached result is advanced by folding
// in just the appended rows (exec.Advance) instead of rescanning.
func (s *Server) runWithCleaning(ctx context.Context, sess *session, sql string) error {
	key := cleanKey(sql, sess.applied)
	if sess.res != nil && sess.resKey == key {
		if src, err := s.db.Table(sess.res.Stmt.From); err == nil &&
			src.SameFamily(sess.res.Source) && src.NumRows() >= sess.res.Source.NumRows() {
			res, err := exec.AdvanceCtx(ctx, sess.res, src)
			if err == nil {
				s.recordScan(res.Plan)
				sess.sql = sql
				sess.res = res
				// lastDbg survives: its carried analysis advances with
				// the result (core.DebugAdvance), closing the
				// append → advance → re-debug monitoring loop.
				return nil
			}
			if ctx.Err() != nil {
				// A cancelled Advance leaves sess.res valid and
				// unclaimed (see exec.AdvanceCtx); don't burn a full
				// rescan on a request that is already dead.
				return err
			}
			// Any other Advance error (already-advanced result,
			// unexpected shape) falls through to the full run below.
		}
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return err
	}
	for _, p := range sess.applied {
		stmt.Where = expr.And(stmt.Where, p.NegationExpr())
	}
	res, err := exec.RunCtx(ctx, s.db, stmt)
	if err != nil {
		return err
	}
	s.recordScan(res.Plan)
	sess.sql = sql
	sess.res = res
	sess.resKey = key
	sess.lastDbg = nil
	return nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		SQL     string `json:"sql"`
	}
	if !s.decodeJSON(w, r, &req) {
		return
	}
	sess := s.session(req.Session)
	if err := sess.acquire(r.Context()); err != nil {
		writeReqErr(s, w, err)
		return
	}
	defer sess.release()
	if err := s.runWithCleaning(r.Context(), sess, req.SQL); err != nil {
		writeReqErr(s, w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.buildPayload(sess))
}

// handleSuggest implements the paper's dynamic Error Metric Form: given
// the highlighted suspect groups it returns the offered metrics together
// with a prefilled expected value c — the median of the *non-suspect*
// groups' aggregate, i.e. "what this aggregate normally looks like".
func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		Suspect []int  `json:"suspect"`
		AggItem int    `json:"aggItem"`
	}
	if !s.decodeJSON(w, r, &req) {
		return
	}
	sess := s.session(req.Session)
	if err := sess.acquire(r.Context()); err != nil {
		writeReqErr(s, w, err)
		return
	}
	defer sess.release()
	if sess.res == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("no query executed yet"))
		return
	}
	ords := sess.res.AggOrdinals()
	if len(ords) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("query has no aggregates"))
		return
	}
	col := ords[0]
	if req.AggItem > 0 && req.AggItem < sess.res.Table.NumCols() {
		col = req.AggItem
	}
	inS := make(map[int]bool, len(req.Suspect))
	for _, i := range req.Suspect {
		inS[i] = true
	}
	var rest, suspects []float64
	for i := 0; i < sess.res.Table.NumRows(); i++ {
		v := sess.res.Table.Value(i, col)
		if v.IsNull() {
			continue
		}
		if inS[i] {
			suspects = append(suspects, v.Float())
		} else {
			rest = append(rest, v.Float())
		}
	}
	suggested := errmetric.SuggestReference(rest)
	// Offer the directional metric matching how the suspects deviate.
	recommended := "notequal"
	if len(suspects) > 0 {
		sMed := errmetric.SuggestReference(suspects)
		if sMed > suggested {
			recommended = "toohigh"
		} else if sMed < suggested {
			recommended = "toolow"
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"metrics":     errmetric.Specs(),
		"suggestedC":  suggested,
		"recommended": recommended,
	})
}

func (s *Server) handleZoom(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		Suspect []int  `json:"suspect"`
		Limit   int    `json:"limit"`
	}
	if !s.decodeJSON(w, r, &req) {
		return
	}
	sess := s.session(req.Session)
	if err := sess.acquire(r.Context()); err != nil {
		writeReqErr(s, w, err)
		return
	}
	defer sess.release()
	if sess.res == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("no query executed yet"))
		return
	}
	limit := req.Limit
	if limit <= 0 || limit > 20000 {
		limit = 20000
	}
	lineage := sess.res.Lineage(req.Suspect)
	truncated := false
	if len(lineage) > limit {
		lineage = lineage[:limit]
		truncated = true
	}
	src := sess.res.Source
	var cols []string
	for _, c := range src.Schema() {
		cols = append(cols, c.Name)
	}
	rows := make([][]any, 0, len(lineage))
	for _, ri := range lineage {
		row := src.Row(ri)
		jsRow := make([]any, 0, len(row)+1)
		jsRow = append(jsRow, ri) // row id first, so D' selections can reference it
		for _, v := range row {
			jsRow = append(jsRow, valueJSON(v))
		}
		rows = append(rows, jsRow)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"columns":   append([]string{"_rowid"}, cols...),
		"rows":      rows,
		"truncated": truncated,
	})
}

// explanationJSON is one ranked predicate over the wire.
type explanationJSON struct {
	Predicate      string  `json:"predicate"`
	Score          float64 `json:"score"`
	ErrImprovement float64 `json:"errImprovement"`
	F1             float64 `json:"f1"`
	NumTuples      int     `json:"numTuples"`
	Origin         string  `json:"origin"`
	CleanedSQL     string  `json:"cleanedSql"`
}

func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session      string             `json:"session"`
		Suspect      []int              `json:"suspect"`
		AggItem      int                `json:"aggItem"`
		Metric       string             `json:"metric"`
		MetricParams map[string]float64 `json:"metricParams"`
		// ExamplesCond is a SQL condition over source columns selecting
		// D' within the suspect lineage (e.g. "temperature > 100").
		ExamplesCond string `json:"examplesCond"`
		// ExampleRows lists explicit D' row ids (from /api/zoom).
		ExampleRows []int `json:"exampleRows"`
	}
	if !s.decodeJSON(w, r, &req) {
		return
	}
	sess := s.session(req.Session)
	if err := sess.acquire(r.Context()); err != nil {
		writeReqErr(s, w, err)
		return
	}
	defer sess.release()
	if sess.res == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("no query executed yet"))
		return
	}
	// Streaming sessions: when the source table grew since the cached
	// result (an /api/append landed), advance the result first so the
	// debug sees the appended rows — runWithCleaning folds in only the
	// appended batch and keeps lastDbg's carried analysis alive.
	//
	// The client's suspect indexes point into the result it SAW; after
	// the refresh re-materializes HAVING/ORDER BY/LIMIT over the grown
	// table, the same output row number can be a different group. The
	// indexes are therefore remapped by group identity (first source
	// row) across the refresh; a selected group that no longer
	// materializes is an error asking the client to re-query, never a
	// silent answer about a different group.
	if sess.sql != "" {
		if src, err := s.db.Table(sess.res.Stmt.From); err == nil &&
			src.SameFamily(sess.res.Source) && src.NumRows() > sess.res.Source.NumRows() {
			var firstRows []int
			if oldRes := sess.res; len(req.Suspect) > 0 {
				firstRows = make([]int, 0, len(req.Suspect))
				for _, ri := range req.Suspect {
					if ri < 0 || ri >= len(oldRes.Groups) {
						firstRows = nil // let Debug report the bad index
						break
					}
					firstRows = append(firstRows, oldRes.Groups[ri].FirstRow)
				}
			}
			if err := s.runWithCleaning(r.Context(), sess, sess.sql); err != nil {
				writeReqErr(s, w, err)
				return
			}
			if firstRows != nil {
				byFirst := make(map[int]int, len(sess.res.Groups))
				for ri, g := range sess.res.Groups {
					if _, dup := byFirst[g.FirstRow]; !dup {
						byFirst[g.FirstRow] = ri
					}
				}
				remapped := make([]int, len(firstRows))
				for i, fr := range firstRows {
					ri, ok := byFirst[fr]
					if !ok {
						writeErr(w, http.StatusConflict, fmt.Errorf(
							"the result changed while ingesting: suspect group %d is no longer in the output; re-run the query", req.Suspect[i]))
						return
					}
					remapped[i] = ri
				}
				req.Suspect = remapped
			}
		}
	}
	metric, err := errmetric.New(req.Metric, req.MetricParams)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	examples := req.ExampleRows
	if len(examples) == 0 && strings.TrimSpace(req.ExamplesCond) != "" {
		examples, err = core.ExamplesWhere(sess.res, req.Suspect, req.ExamplesCond)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	aggItem := req.AggItem
	if aggItem == 0 {
		aggItem = -1
	}
	// DebugAdvance carries the previous debug's analysis forward when
	// the session's result advanced incrementally (nil lastDbg or any
	// incompatibility falls back to a full Debug internally).
	dr, err := core.DebugAdvance(sess.lastDbg, core.DebugRequest{
		Ctx:      r.Context(),
		Result:   sess.res,
		AggItem:  aggItem,
		Suspect:  req.Suspect,
		Examples: examples,
		Metric:   metric,
	})
	if err != nil {
		// A cancelled debug leaves sess.lastDbg untouched: the carried
		// analysis stays valid for the retry (core.DebugAdvance).
		writeReqErr(s, w, err)
		return
	}
	sess.lastDbg = dr
	out := struct {
		Eps          float64           `json:"eps"`
		LineageSize  int               `json:"lineageSize"`
		Incremental  bool              `json:"incremental"`
		Mode         string            `json:"mode"`
		Explanations []explanationJSON `json:"explanations"`
	}{Eps: dr.Eps, LineageSize: len(dr.F), Incremental: dr.Plan.Incremental, Mode: dr.Plan.Mode}
	for _, e := range dr.Explanations {
		out.Explanations = append(out.Explanations, explanationJSON{
			Predicate:      e.Pred.String(),
			Score:          e.Score,
			ErrImprovement: e.ErrImprovement,
			F1:             e.F1,
			NumTuples:      e.NumTuples,
			Origin:         e.Origin,
			CleanedSQL:     core.CleanedSQL(sess.res.Stmt, e.Pred),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleClean(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		// Explanation indexes into the last /api/debug response.
		Explanation *int `json:"explanation"`
	}
	if !s.decodeJSON(w, r, &req) {
		return
	}
	sess := s.session(req.Session)
	if err := sess.acquire(r.Context()); err != nil {
		writeReqErr(s, w, err)
		return
	}
	defer sess.release()
	if sess.res == nil || sess.lastDbg == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("debug first, then clean"))
		return
	}
	if req.Explanation == nil || *req.Explanation < 0 || *req.Explanation >= len(sess.lastDbg.Explanations) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("explanation index out of range"))
		return
	}
	pred := sess.lastDbg.Explanations[*req.Explanation].Pred
	sess.applied = append(sess.applied, pred)
	if err := s.runWithCleaning(r.Context(), sess, sess.sql); err != nil {
		sess.applied = sess.applied[:len(sess.applied)-1]
		writeReqErr(s, w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.buildPayload(sess))
}

func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
	}
	if !s.decodeJSON(w, r, &req) {
		return
	}
	sess := s.session(req.Session)
	if err := sess.acquire(r.Context()); err != nil {
		writeReqErr(s, w, err)
		return
	}
	defer sess.release()
	sess.applied = nil
	sess.lastDbg = nil
	if sess.sql != "" {
		if err := s.runWithCleaning(r.Context(), sess, sess.sql); err != nil {
			writeReqErr(s, w, err)
			return
		}
		writeJSON(w, http.StatusOK, s.buildPayload(sess))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleAppend is the streaming ingest endpoint: it appends a batch of
// rows to a table through the engine's copy-on-write path (engine.DB
// Append), so queries in flight keep their snapshot and later queries
// see the whole batch. Cell values follow JSON typing: null, bool,
// number (int columns require integral numbers; time columns take unix
// seconds), or string (parsed per column type, so timestamps may also
// be RFC 3339 strings).
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Table string  `json:"table"`
		Rows  [][]any `json:"rows"`
	}
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Table == "" || len(req.Rows) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("append needs a table and at least one row"))
		return
	}
	t, err := s.db.Table(req.Table)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	schema := t.Schema()
	rows := make([][]engine.Value, len(req.Rows))
	for ri, raw := range req.Rows {
		if len(raw) != len(schema) {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("row %d has %d values, schema has %d columns", ri, len(raw), len(schema)))
			return
		}
		row := make([]engine.Value, len(raw))
		for ci, cell := range raw {
			v, err := jsonValue(cell, schema[ci].Type)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("row %d column %s: %w", ri, schema[ci].Name, err))
				return
			}
			row[ci] = v
		}
		rows[ri] = row
	}
	nt, durable, err := s.appendRows(r.Context(), req.Table, rows)
	if err != nil {
		// Fail-stopped tables answer 503 + Retry-After here (the batch
		// is safe to retry: nothing was acknowledged), deadline/cancel
		// map to 504/499 — see writeReqErr.
		writeReqErr(s, w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"table":    nt.Name(),
		"appended": len(rows),
		"rows":     nt.NumRows(),
		"version":  nt.Version(),
		"durable":  durable,
	})
}

// handleRetention applies a retention policy to a table through the
// engine's whole-segment drop path (engine.DB.Retain) and atomically
// republishes the retained version. In-flight queries keep their
// snapshots; session results cached over the old window advance across
// the horizon on their next request (rebasing when the carried state
// allows it, re-running otherwise — see exec.Advance).
func (s *Server) handleRetention(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Table   string  `json:"table"`
		MaxRows int     `json:"max_rows"`
		TimeCol string  `json:"time_col"`
		Cutoff  float64 `json:"cutoff"`
	}
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Table == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("retention needs a table"))
		return
	}
	if req.MaxRows <= 0 && req.TimeCol == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("retention needs max_rows or time_col+cutoff"))
		return
	}
	nt, stats, err := s.retainRows(r.Context(), req.Table, engine.RetentionPolicy{
		MaxRows: req.MaxRows, TimeCol: req.TimeCol, Cutoff: req.Cutoff,
	})
	if err != nil {
		writeReqErr(s, w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"table":             nt.Name(),
		"dropped_segments":  stats.DroppedSegments,
		"dropped_rows":      stats.DroppedRows,
		"retained_segments": stats.RetainedSegments,
		"rows":              nt.NumRows(),
		"base":              nt.Base(),
		"version":           nt.Version(),
	})
}

// appendRows routes an ingest batch through the durable store when one
// is attached (falling back to the plain engine path for tables the
// store does not manage), reporting whether the append was durable.
func (s *Server) appendRows(ctx context.Context, table string, rows [][]engine.Value) (*engine.Table, bool, error) {
	if s.st != nil {
		nt, err := s.st.AppendCtx(ctx, table, rows)
		if err == nil {
			return nt, true, nil
		}
		if !errors.Is(err, store.ErrUnknownTable) {
			return nil, false, err
		}
	}
	if err := ctx.Err(); err != nil {
		// Mirror the store's contract on the in-memory path: cancel
		// before publishing or not at all.
		return nil, false, fmt.Errorf("server: append %s: %w", table, err)
	}
	nt, err := s.db.Append(table, rows)
	return nt, false, err
}

// retainRows is appendRows' retention twin: durable (manifested,
// segment files unlinked) through the store, in-memory otherwise.
func (s *Server) retainRows(ctx context.Context, table string, pol engine.RetentionPolicy) (*engine.Table, engine.RetainStats, error) {
	if s.st != nil {
		nt, stats, err := s.st.RetainCtx(ctx, table, pol)
		if err == nil || !errors.Is(err, store.ErrUnknownTable) {
			return nt, stats, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, engine.RetainStats{}, fmt.Errorf("server: retain %s: %w", table, err)
	}
	return s.db.Retain(table, pol)
}

// sessionStats is one session's storage footprint in /api/stats.
type sessionStats struct {
	Session  string `json:"session"`
	Table    string `json:"table,omitempty"`
	Rows     int    `json:"rows"`
	Base     int    `json:"base"`
	Segments int    `json:"segments"`
	Bytes    int    `json:"approx_bytes"`
	// Busy marks a session whose lock was held by an in-flight request
	// when stats ran; its footprint is omitted rather than blocking.
	Busy bool `json:"busy,omitempty"`
}

// handleStats reports the storage footprint retention is managing: per
// registered table and per live session (the table version its cached
// result still pins — the number that shows whether old windows are
// being held alive), as retained segment counts and approximate
// resident bytes.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	type tableStats struct {
		Rows     int `json:"rows"`
		Base     int `json:"base"`
		Segments int `json:"segments"`
		Bytes    int `json:"approx_bytes"`
	}
	tables := make(map[string]tableStats)
	for _, name := range s.db.Names() {
		t, err := s.db.Table(name)
		if err != nil {
			continue
		}
		segs, bytes := t.MemStats()
		tables[name] = tableStats{Rows: t.NumRows(), Base: t.Base(), Segments: segs, Bytes: bytes}
	}

	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	sesss := make([]*session, 0, len(s.sessions))
	for id, sess := range s.sessions {
		ids = append(ids, id)
		sesss = append(sesss, sess)
	}
	s.mu.Unlock()

	out := make([]sessionStats, 0, len(ids))
	for i, sess := range sesss {
		st := sessionStats{Session: ids[i]}
		if sess.tryAcquire() {
			if sess.res != nil && sess.res.Source != nil {
				src := sess.res.Source
				segs, bytes := src.MemStats()
				st.Table = src.Name()
				st.Rows = src.NumRows()
				st.Base = src.Base()
				st.Segments = segs
				st.Bytes = bytes
			}
			sess.release()
		} else {
			st.Busy = true
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Session < out[j].Session })
	payload := map[string]any{
		"tables":   tables,
		"sessions": out,
		// Lifecycle accounting: per endpoint, total == completed + shed
		// + deadline_exceeded + cancelled at any quiescent point.
		"endpoints": s.lc.endpointStats(),
		// Out-of-core scan accounting: how much of the query load the
		// zone maps answered without disk (segments skipped) and how
		// chunk pins split between faults and memory hits. Rates are
		// per executed query.
		"scan": s.scanPayload(),
	}
	if s.st != nil {
		// Durability report: per-table on-disk segment counts plus any
		// quarantined files, recovery gaps or fail-stops — the operator's
		// view of whether the disk still matches what was acknowledged.
		payload["store"] = s.st.Stats()
	}
	writeJSON(w, http.StatusOK, payload)
}

// scanPayload summarizes the accumulated per-query scan counters for
// /api/stats.
func (s *Server) scanPayload() map[string]any {
	queries := s.scanQueries.Load()
	skipped := s.segsSkipped.Load()
	faulted := s.chunksFaulted.Load()
	resident := s.chunksResident.Load()
	out := map[string]any{
		"queries":         queries,
		"segs_skipped":    skipped,
		"chunks_faulted":  faulted,
		"chunks_resident": resident,
		// Planner counters: how often greedy clause ordering ran, how
		// many conjuncts its short-circuit never materialized, and how
		// many advances kept their sorted output by incremental merge.
		"filters_ordered":   s.filtersOrdered.Load(),
		"conjuncts_skipped": s.conjunctsSkipped.Load(),
		"sorts_carried":     s.sortsCarried.Load(),
		// Residual counters: queries that rode the vectorized scan with
		// non-lowerable conjuncts, and the per-row evaluations paid on
		// the lowered mask's survivors.
		"filters_residual": s.filtersResidual.Load(),
		"residual_rows":    s.residualRows.Load(),
	}
	if queries > 0 {
		out["segs_skipped_per_query"] = float64(skipped) / float64(queries)
	}
	if pins := faulted + resident; pins > 0 {
		out["fault_rate"] = float64(faulted) / float64(pins)
	}
	return out
}

// jsonValue converts one decoded JSON cell to an engine value of the
// column's type.
func jsonValue(cell any, ct engine.Type) (engine.Value, error) {
	switch c := cell.(type) {
	case nil:
		return engine.Null, nil
	case bool:
		if ct != engine.TBool {
			return engine.Null, fmt.Errorf("bool value for %s column", ct)
		}
		return engine.NewBool(c), nil
	case float64:
		switch ct {
		case engine.TFloat:
			return engine.NewFloat(c), nil
		case engine.TInt:
			if c != float64(int64(c)) {
				return engine.Null, fmt.Errorf("non-integral value %v for int column", c)
			}
			return engine.NewInt(int64(c)), nil
		case engine.TTime:
			if c != float64(int64(c)) {
				return engine.Null, fmt.Errorf("non-integral unix seconds %v", c)
			}
			return engine.NewTimeUnix(int64(c)), nil
		default:
			return engine.Null, fmt.Errorf("numeric value for %s column", ct)
		}
	case string:
		return engine.ParseValue(c, ct)
	default:
		return engine.Null, fmt.Errorf("unsupported JSON value %T", cell)
	}
}
