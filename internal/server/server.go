// Package server implements the DBWipes web frontend: a JSON API plus an
// embedded single-page dashboard with the paper's four components —
// query input form, result scatterplot with suspect/example selection,
// error metric form, and the ranked predicate list whose entries can be
// clicked to clean the database and automatically re-run the query
// (Figure 2 of the paper).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/predicate"
	"repro/internal/sqlparse"
)

// Server serves the DBWipes dashboard over one engine database.
type Server struct {
	db *engine.DB

	mu       sync.Mutex
	sessions map[string]*session
}

// session is one browser's interactive state.
type session struct {
	sql     string
	res     *exec.Result
	applied []predicate.Predicate // cleaning history (clicked predicates)
	lastDbg *core.DebugResult
}

// New creates a server over db.
func New(db *engine.DB) *Server {
	return &Server{db: db, sessions: make(map[string]*session)}
}

// Handler returns the HTTP handler (mountable under any mux).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("GET /api/tables", s.handleTables)
	mux.HandleFunc("GET /api/metrics", s.handleMetrics)
	mux.HandleFunc("POST /api/query", s.handleQuery)
	mux.HandleFunc("POST /api/suggest", s.handleSuggest)
	mux.HandleFunc("POST /api/zoom", s.handleZoom)
	mux.HandleFunc("POST /api/debug", s.handleDebug)
	mux.HandleFunc("POST /api/clean", s.handleClean)
	mux.HandleFunc("POST /api/reset", s.handleReset)
	return mux
}

func (s *Server) session(id string) *session {
	if id == "" {
		id = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		sess = &session{}
		s.sessions[id] = sess
	}
	return sess
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashboardHTML))
}

func (s *Server) handleTables(w http.ResponseWriter, _ *http.Request) {
	type col struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	out := map[string][]col{}
	for _, name := range s.db.Names() {
		t, err := s.db.Table(name)
		if err != nil {
			continue
		}
		var cols []col
		for _, c := range t.Schema() {
			cols = append(cols, col{c.Name, c.Type.String()})
		}
		out[name] = cols
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, errmetric.Specs())
}

// queryPayload is the shared response shape of /api/query and
// /api/clean.
type queryPayload struct {
	SQL       string   `json:"sql"`
	Columns   []string `json:"columns"`
	Types     []string `json:"types"`
	Rows      [][]any  `json:"rows"`
	AggCols   []int    `json:"aggCols"`
	Applied   []string `json:"applied"`
	Truncated bool     `json:"truncated"`
	// PCA holds the two-principal-component projection of the groups
	// (paper §2.2.1's proposed multi-attribute visualization), present
	// when the result has 3+ numeric columns; PCAExplained reports the
	// variance ratio captured by each axis.
	PCA          [][2]float64 `json:"pca,omitempty"`
	PCAExplained [2]float64   `json:"pcaExplained,omitempty"`
}

const maxRowsOut = 5000

func (s *Server) buildPayload(sess *session) *queryPayload {
	res := sess.res
	p := &queryPayload{SQL: sess.sql, AggCols: res.AggOrdinals()}
	for _, c := range res.Table.Schema() {
		p.Columns = append(p.Columns, c.Name)
		p.Types = append(p.Types, c.Type.String())
	}
	n := res.Table.NumRows()
	if n > maxRowsOut {
		n = maxRowsOut
		p.Truncated = true
	}
	for i := 0; i < n; i++ {
		row := res.Table.Row(i)
		jsRow := make([]any, len(row))
		for c, v := range row {
			jsRow[c] = valueJSON(v)
		}
		p.Rows = append(p.Rows, jsRow)
	}
	for _, ap := range sess.applied {
		p.Applied = append(p.Applied, ap.String())
	}
	// Multi-attribute results additionally get the paper's proposed
	// PCA view. Only computed for the rows actually shipped.
	numeric := 0
	for _, c := range res.Table.Schema() {
		if c.Type.IsNumeric() {
			numeric++
		}
	}
	if numeric >= 3 && !p.Truncated {
		if proj, explained, err := core.PCAGroups(res); err == nil {
			p.PCA = proj
			p.PCAExplained = explained
		}
	}
	return p
}

func valueJSON(v engine.Value) any {
	switch v.T {
	case engine.TNull:
		return nil
	case engine.TBool:
		return v.Bool()
	case engine.TInt:
		return v.I
	case engine.TFloat:
		return v.F
	case engine.TTime:
		return v.Time().Format("2006-01-02T15:04:05Z")
	default:
		return v.S
	}
}

// runWithCleaning executes sql with the session's cleaning predicates
// appended as WHERE NOT (...) conjuncts.
func (s *Server) runWithCleaning(sess *session, sql string) error {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return err
	}
	for _, p := range sess.applied {
		stmt.Where = expr.And(stmt.Where, p.NegationExpr())
	}
	res, err := exec.Run(s.db, stmt)
	if err != nil {
		return err
	}
	sess.sql = sql
	sess.res = res
	sess.lastDbg = nil
	return nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		SQL     string `json:"sql"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess := s.session(req.Session)
	if err := s.runWithCleaning(sess, req.SQL); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.buildPayload(sess))
}

// handleSuggest implements the paper's dynamic Error Metric Form: given
// the highlighted suspect groups it returns the offered metrics together
// with a prefilled expected value c — the median of the *non-suspect*
// groups' aggregate, i.e. "what this aggregate normally looks like".
func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		Suspect []int  `json:"suspect"`
		AggItem int    `json:"aggItem"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess := s.session(req.Session)
	if sess.res == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("no query executed yet"))
		return
	}
	ords := sess.res.AggOrdinals()
	if len(ords) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("query has no aggregates"))
		return
	}
	col := ords[0]
	if req.AggItem > 0 && req.AggItem < sess.res.Table.NumCols() {
		col = req.AggItem
	}
	inS := make(map[int]bool, len(req.Suspect))
	for _, i := range req.Suspect {
		inS[i] = true
	}
	var rest, suspects []float64
	for i := 0; i < sess.res.Table.NumRows(); i++ {
		v := sess.res.Table.Value(i, col)
		if v.IsNull() {
			continue
		}
		if inS[i] {
			suspects = append(suspects, v.Float())
		} else {
			rest = append(rest, v.Float())
		}
	}
	suggested := errmetric.SuggestReference(rest)
	// Offer the directional metric matching how the suspects deviate.
	recommended := "notequal"
	if len(suspects) > 0 {
		sMed := errmetric.SuggestReference(suspects)
		if sMed > suggested {
			recommended = "toohigh"
		} else if sMed < suggested {
			recommended = "toolow"
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"metrics":     errmetric.Specs(),
		"suggestedC":  suggested,
		"recommended": recommended,
	})
}

func (s *Server) handleZoom(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		Suspect []int  `json:"suspect"`
		Limit   int    `json:"limit"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess := s.session(req.Session)
	if sess.res == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("no query executed yet"))
		return
	}
	limit := req.Limit
	if limit <= 0 || limit > 20000 {
		limit = 20000
	}
	lineage := sess.res.Lineage(req.Suspect)
	truncated := false
	if len(lineage) > limit {
		lineage = lineage[:limit]
		truncated = true
	}
	src := sess.res.Source
	var cols []string
	for _, c := range src.Schema() {
		cols = append(cols, c.Name)
	}
	rows := make([][]any, 0, len(lineage))
	for _, ri := range lineage {
		row := src.Row(ri)
		jsRow := make([]any, 0, len(row)+1)
		jsRow = append(jsRow, ri) // row id first, so D' selections can reference it
		for _, v := range row {
			jsRow = append(jsRow, valueJSON(v))
		}
		rows = append(rows, jsRow)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"columns":   append([]string{"_rowid"}, cols...),
		"rows":      rows,
		"truncated": truncated,
	})
}

// explanationJSON is one ranked predicate over the wire.
type explanationJSON struct {
	Predicate      string  `json:"predicate"`
	Score          float64 `json:"score"`
	ErrImprovement float64 `json:"errImprovement"`
	F1             float64 `json:"f1"`
	NumTuples      int     `json:"numTuples"`
	Origin         string  `json:"origin"`
	CleanedSQL     string  `json:"cleanedSql"`
}

func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session      string             `json:"session"`
		Suspect      []int              `json:"suspect"`
		AggItem      int                `json:"aggItem"`
		Metric       string             `json:"metric"`
		MetricParams map[string]float64 `json:"metricParams"`
		// ExamplesCond is a SQL condition over source columns selecting
		// D' within the suspect lineage (e.g. "temperature > 100").
		ExamplesCond string `json:"examplesCond"`
		// ExampleRows lists explicit D' row ids (from /api/zoom).
		ExampleRows []int `json:"exampleRows"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess := s.session(req.Session)
	if sess.res == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("no query executed yet"))
		return
	}
	metric, err := errmetric.New(req.Metric, req.MetricParams)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	examples := req.ExampleRows
	if len(examples) == 0 && strings.TrimSpace(req.ExamplesCond) != "" {
		examples, err = core.ExamplesWhere(sess.res, req.Suspect, req.ExamplesCond)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	aggItem := req.AggItem
	if aggItem == 0 {
		aggItem = -1
	}
	dr, err := core.Debug(core.DebugRequest{
		Result:   sess.res,
		AggItem:  aggItem,
		Suspect:  req.Suspect,
		Examples: examples,
		Metric:   metric,
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess.lastDbg = dr
	out := struct {
		Eps          float64           `json:"eps"`
		LineageSize  int               `json:"lineageSize"`
		Explanations []explanationJSON `json:"explanations"`
	}{Eps: dr.Eps, LineageSize: len(dr.F)}
	for _, e := range dr.Explanations {
		out.Explanations = append(out.Explanations, explanationJSON{
			Predicate:      e.Pred.String(),
			Score:          e.Score,
			ErrImprovement: e.ErrImprovement,
			F1:             e.F1,
			NumTuples:      e.NumTuples,
			Origin:         e.Origin,
			CleanedSQL:     core.CleanedSQL(sess.res.Stmt, e.Pred),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleClean(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		// Explanation indexes into the last /api/debug response.
		Explanation *int `json:"explanation"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess := s.session(req.Session)
	if sess.res == nil || sess.lastDbg == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("debug first, then clean"))
		return
	}
	if req.Explanation == nil || *req.Explanation < 0 || *req.Explanation >= len(sess.lastDbg.Explanations) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("explanation index out of range"))
		return
	}
	pred := sess.lastDbg.Explanations[*req.Explanation].Pred
	sess.applied = append(sess.applied, pred)
	if err := s.runWithCleaning(sess, sess.sql); err != nil {
		sess.applied = sess.applied[:len(sess.applied)-1]
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.buildPayload(sess))
}

func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess := s.session(req.Session)
	sess.applied = nil
	sess.lastDbg = nil
	if sess.sql != "" {
		if err := s.runWithCleaning(sess, sess.sql); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, s.buildPayload(sess))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}
