package server

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain pins the suite-wide no-stranded-goroutines contract:
// cancelled work must release its workers, not park them forever.
func TestMain(m *testing.M) { leakcheck.Main(m) }
