package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/datasets"
)

// TestRecoveryMiddleware asserts a panicking handler yields a JSON 500
// (with the stack logged) rather than a dropped connection.
func TestRecoveryMiddleware(t *testing.T) {
	var logged bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&logged)
	t.Cleanup(func() { log.SetOutput(prev) })

	h := withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom in handler")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/panics")
	if err != nil {
		t.Fatalf("panic tore down the connection: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("500 body is not JSON: %v", err)
	}
	if body["error"] != "internal server error" {
		t.Fatalf("500 body %v", body)
	}
	got := logged.String()
	if !strings.Contains(got, "boom in handler") || !strings.Contains(got, "middleware_test.go") {
		t.Fatalf("panic log missing message or stack:\n%s", got)
	}
}

// TestRecoveryRepanicsAbortHandler: http.ErrAbortHandler is the
// sanctioned mid-response abort and must pass through untouched.
func TestRecoveryRepanicsAbortHandler(t *testing.T) {
	h := withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if p := recover(); p != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler re-raised", p)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}

// TestBodyLimit asserts POST bodies over the configured cap get a 413
// and do not reach the decoder, on both ingest and query endpoints.
func TestBodyLimit(t *testing.T) {
	db, _ := datasets.FECDB(datasets.FECConfig{Rows: 1_000, Seed: 2})
	srv := New(db)
	srv.SetMaxBodyBytes(256)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := `{"table":"fec","rows":[` + strings.Repeat(`{"amount":1},`, 200) + `{"amount":1}]}`
	if len(big) <= 256 {
		t.Fatal("test body not oversized")
	}
	for _, path := range []string{"/api/append", "/api/query"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("POST %s oversized: status %d body %s, want 413", path, resp.StatusCode, b)
		}
		var msg map[string]string
		if err := json.Unmarshal(b, &msg); err != nil || msg["error"] == "" {
			t.Fatalf("413 body not a JSON error: %s", b)
		}
	}

	// A small body on the same server still works.
	resp, err := http.Post(ts.URL+"/api/query", "application/json",
		strings.NewReader(`{"table":"fec"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusRequestEntityTooLarge {
		t.Fatal("small body rejected by the cap")
	}
}
