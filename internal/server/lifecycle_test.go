package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/store"
)

// getStats fetches the per-endpoint lifecycle counters.
func getStats(t *testing.T, ts *httptest.Server) map[string]endpointStats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Endpoints map[string]endpointStats `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Endpoints
}

// checkAccounted asserts the lifecycle invariant on one endpoint's
// counters: every arrival is classified exactly once. The "stats"
// endpoint observes itself mid-request (its own arrival is counted but
// not yet classified in the snapshot it returns), so callers skip it.
func checkAccounted(t *testing.T, name string, c endpointStats) {
	t.Helper()
	if name == "stats" {
		return
	}
	if c.Total != c.Completed+c.Shed+c.Deadline+c.Cancelled {
		t.Errorf("%s: total %d != completed %d + shed %d + deadline %d + cancelled %d",
			name, c.Total, c.Completed, c.Shed, c.Deadline, c.Cancelled)
	}
	if c.InFlight != 0 {
		t.Errorf("%s: %d requests still in flight at quiescence", name, c.InFlight)
	}
}

// TestAppendFailStop503 pins the shedding contract for wedged tables:
// once the store fail-stops a table, /api/append answers 503 with a
// Retry-After hint and a machine-readable reason — the batch was never
// acknowledged, so the client should back off and retry, not drop it.
func TestAppendFailStop503(t *testing.T) {
	mem := store.NewMemFS()
	ffs := store.NewFaultFS(mem)
	st, err := store.Open("/db", store.Options{SyncEvery: 1, FS: ffs, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.CreateTable("p", engine.NewSchema("k", engine.TInt, "v", engine.TFloat), engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	srv := New(st.Eng())
	srv.AttachStore(st)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	batch := map[string]any{"table": "p", "rows": [][]any{{1, 2.5}}}
	if resp := post(t, ts, "/api/append", batch, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy append: status %d", resp.StatusCode)
	}

	// Fail the next mutating filesystem operation (the WAL write): the
	// append that hits it wedges the table.
	ffs.FailAt(1, store.FaultError, rand.New(rand.NewSource(7)))
	for i := 0; i < 2; i++ { // the faulted append, then one against the wedged table
		resp := post(t, ts, "/api/append", batch, nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("append %d on fail-stopped table: status %d, want 503", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("append %d: 503 without Retry-After", i)
		}
		var body struct {
			Error     string `json:"error"`
			Reason    string `json:"reason"`
			Retryable bool   `json:"retryable"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Reason != "fail-stopped" || !body.Retryable || body.Error == "" {
			t.Fatalf("append %d: reason JSON %+v", i, body)
		}
	}
	// Reads still serve the last acknowledged version.
	var q struct {
		Rows [][]any `json:"rows"`
	}
	if resp := post(t, ts, "/api/query", map[string]any{"sql": "SELECT k, avg(v) AS a FROM p GROUP BY k"}, &q); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after fail-stop: status %d", resp.StatusCode)
	}
	if len(q.Rows) != 1 {
		t.Fatalf("query after fail-stop: %d groups", len(q.Rows))
	}
}

// TestDeadline504 pins ?timeout=: a request whose deadline fires
// mid-execution returns 504 and is classified deadline_exceeded, never
// double-counted.
func TestDeadline504(t *testing.T) {
	ts := testServer(t)
	resp := post(t, ts, "/api/query?timeout=1ns",
		map[string]any{"sql": "SELECT memo, avg(amount) AS a FROM donations GROUP BY memo"}, nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("1ns query: status %d, want 504", resp.StatusCode)
	}
	// A healthy query still works (the deadline is per-request).
	if resp := post(t, ts, "/api/query",
		map[string]any{"sql": "SELECT memo, avg(amount) AS a FROM donations GROUP BY memo"}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up query: status %d", resp.StatusCode)
	}
	eps := getStats(t, ts)
	q := eps["query"]
	if q.Deadline < 1 || q.Completed < 1 || q.Total != 2 {
		t.Fatalf("query counters %+v", q)
	}
	for name, c := range eps {
		checkAccounted(t, name, c)
	}
}

// TestAdmissionShed429 pins load shedding: with every heavy slot busy
// and no queue, new heavy requests are rejected immediately with 429 +
// Retry-After and counted as shed.
func TestAdmissionShed429(t *testing.T) {
	db, _ := datasets.FECDB(datasets.FECConfig{Rows: 30_000, Seed: 2})
	srv := New(db)
	srv.SetLimits(Limits{MaxHeavy: 1, MaxQueue: -1, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.lc.sem <- struct{}{} // occupy the only heavy slot
	resp := post(t, ts, "/api/query",
		map[string]any{"sql": "SELECT memo, avg(amount) AS a FROM donations GROUP BY memo"}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated query: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", ra)
	}
	<-srv.lc.sem
	if resp := post(t, ts, "/api/query",
		map[string]any{"sql": "SELECT memo, avg(amount) AS a FROM donations GROUP BY memo"}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after slot freed: status %d", resp.StatusCode)
	}
	eps := getStats(t, ts)
	q := eps["query"]
	if q.Shed != 1 || q.Completed != 1 || q.Total != 2 {
		t.Fatalf("query counters %+v", q)
	}
	for name, c := range eps {
		checkAccounted(t, name, c)
	}
}

// TestSessionLockBounded pins timed lock acquisition: a request whose
// session is held by another in-flight request gives up when its
// deadline fires instead of queueing forever, and /api/stats reports
// the session busy rather than blocking behind it.
func TestSessionLockBounded(t *testing.T) {
	db, _ := datasets.FECDB(datasets.FECConfig{Rows: 30_000, Seed: 2})
	s := New(db)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sess := s.session("locked")
	sess.lockCh <- struct{}{} // simulate a long-running request holding the session

	resp := post(t, ts, "/api/suggest?timeout=30ms",
		map[string]any{"session": "locked", "suspect": []int{0}}, nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("request on held session: status %d, want 504", resp.StatusCode)
	}

	var stats struct {
		Sessions []sessionStats `json:"sessions"`
	}
	sresp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range stats.Sessions {
		if st.Session == "locked" {
			found = true
			if !st.Busy {
				t.Fatal("held session not reported busy")
			}
		}
	}
	if !found {
		t.Fatal("held session missing from stats")
	}

	<-sess.lockCh // release; the session must be usable again
	if resp := post(t, ts, "/api/query",
		map[string]any{"session": "locked", "sql": "SELECT memo, avg(amount) AS a FROM donations GROUP BY memo"}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after lock released: status %d", resp.StatusCode)
	}
}

// TestRetryAfterSeconds pins the Retry-After rendering: the configured
// hint rounds UP to whole seconds with a floor of 1 — the header has no
// sub-second form, and a hint rendered as "0" (or truncated down) would
// invite clients back before the configured backoff elapsed.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		hint time.Duration
		want string
	}{
		{0, "1"},                               // unset: defaulted to 1s
		{-5 * time.Second, "1"},                // nonsense: defaulted
		{time.Millisecond, "1"},                // sub-second clamps up, never "0"
		{400 * time.Millisecond, "1"},          // would round to "0" under Round()
		{999 * time.Millisecond, "1"},          //
		{time.Second, "1"},                     // exact seconds stay exact
		{1400 * time.Millisecond, "2"},         // Round() would understate as "1"
		{1500 * time.Millisecond, "2"},         //
		{2 * time.Second, "2"},                 //
		{2*time.Second + time.Nanosecond, "3"}, // any excess rounds up
		{30 * time.Second, "30"},               //
	}
	for _, tc := range cases {
		lc := &lifecycle{limits: Limits{RetryAfter: tc.hint}.withDefaults()}
		if got := lc.retryAfterSeconds(); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", tc.hint, got, tc.want)
		}
	}
}
