package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/store"
)

// TestStatsOutOfCore pins the /api/stats operator view of out-of-core
// serving: the store section reports buffer-pool occupancy and
// hit/miss/eviction counters, and the scan section reports per-query
// zone-map skip and chunk-fault totals.
func TestStatsOutOfCore(t *testing.T) {
	fs := store.NewMemFS()
	quiet := func(string, ...any) {}
	st, err := store.Open("/db", store.Options{SyncEvery: 1, FS: fs, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable("p", engine.NewSchema("k", engine.TInt, "v", engine.TFloat, "s", engine.TString), engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	strs := []string{"a", "b", "c"}
	for seg := 0; seg < 8; seg++ {
		rows := make([][]engine.Value, 64)
		for r := range rows {
			rows[r] = []engine.Value{
				engine.NewInt(int64(seg * 100)),
				engine.NewFloat(float64(r) * 0.5),
				engine.NewString(strs[r%len(strs)]),
			}
		}
		if _, err := st.Append("p", rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen out-of-core with a pool far smaller than the table.
	st, err = store.Open("/db", store.Options{SyncEvery: 1, FS: fs, Logf: quiet, MaxResidentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st.Eng())
	srv.AttachStore(st)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A full scan (faults chunks) and a zone-prunable point query
	// (skips segments).
	for _, sql := range []string{
		"SELECT s, sum(v) AS total FROM p GROUP BY s",
		"SELECT s, count(*) AS n FROM p WHERE k = 300 GROUP BY s",
	} {
		resp := post(t, ts, "/api/query", map[string]any{"session": "ooc", "sql": sql}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %q: status %d", sql, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Scan struct {
			Queries        int64 `json:"queries"`
			SegsSkipped    int64 `json:"segs_skipped"`
			ChunksFaulted  int64 `json:"chunks_faulted"`
			ChunksResident int64 `json:"chunks_resident"`
		} `json:"scan"`
		Store struct {
			Pool *store.PoolStats `json:"pool"`
		} `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Scan.Queries != 2 {
		t.Fatalf("scan.queries = %d, want 2", stats.Scan.Queries)
	}
	if stats.Scan.ChunksFaulted == 0 {
		t.Fatalf("full scan over out-of-core table faulted no chunks: %+v", stats.Scan)
	}
	if stats.Scan.SegsSkipped == 0 {
		t.Fatalf("zone-prunable point query skipped no segments: %+v", stats.Scan)
	}
	if stats.Store.Pool == nil {
		t.Fatal("store stats missing pool section")
	}
	if stats.Store.Pool.MaxBytes != 4096 || stats.Store.Pool.Misses == 0 {
		t.Fatalf("pool stats %+v", *stats.Store.Pool)
	}
	if stats.Store.Pool.Pinned != 0 {
		t.Fatalf("%d chunks still pinned at quiesce: %+v", stats.Store.Pool.Pinned, *stats.Store.Pool)
	}
	if err := func() error {
		if n := st.PoolPinned(); n != 0 {
			return fmt.Errorf("PoolPinned = %d", n)
		}
		return nil
	}(); err != nil {
		t.Fatal(err)
	}
}
