package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/engine"
)

// streamDB builds a tiny database with a simple groupable table for the
// ingest tests.
func streamDB(t *testing.T) *engine.DB {
	t.Helper()
	tbl := engine.MustNewTable("readings", engine.NewSchema("mote", engine.TString, "temp", engine.TFloat))
	for i := 0; i < 200; i++ {
		tbl.MustAppendRow(engine.NewString(fmt.Sprintf("m%d", i%4)), engine.NewFloat(float64(i%30)))
	}
	db := engine.NewDB()
	db.Register(tbl)
	return db
}

// TestAppendEndpointAndIncrementalRequery walks the streaming loop:
// query, ingest a batch through /api/append, re-query. The second
// result must include the batch, and the server must have advanced the
// cached result incrementally rather than rescanning.
func TestAppendEndpointAndIncrementalRequery(t *testing.T) {
	db := streamDB(t)
	srv := New(db)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	sql := "SELECT mote, sum(temp) AS total FROM readings GROUP BY mote"
	var q1 struct {
		Rows [][]any `json:"rows"`
	}
	post(t, ts, "/api/query", map[string]any{"session": "s", "sql": sql}, &q1)
	if len(q1.Rows) != 4 {
		t.Fatalf("initial groups: %d", len(q1.Rows))
	}

	var ap struct {
		Appended int    `json:"appended"`
		Rows     int    `json:"rows"`
		Error    string `json:"error"`
	}
	resp := post(t, ts, "/api/append", map[string]any{
		"table": "readings",
		"rows": [][]any{
			{"m0", 1000.0},
			{"m9", 5.0}, // brand-new group
			{nil, 3.0},
		},
	}, &ap)
	if resp.StatusCode != 200 || ap.Appended != 3 || ap.Rows != 203 {
		t.Fatalf("append: status=%d %+v", resp.StatusCode, ap)
	}

	var q2 struct {
		Rows [][]any `json:"rows"`
	}
	post(t, ts, "/api/query", map[string]any{"session": "s", "sql": sql}, &q2)
	if len(q2.Rows) != 6 { // m0..m3, m9, NULL
		t.Fatalf("groups after append: %d", len(q2.Rows))
	}
	srv.mu.Lock()
	sess := srv.sessions["s"]
	srv.mu.Unlock()
	sess.acquire(context.Background())
	incremental := sess.res.Plan.Incremental
	n := sess.res.Source.NumRows()
	sess.release()
	if !incremental {
		t.Fatal("re-query after append did not take the incremental path")
	}
	if n != 203 {
		t.Fatalf("advanced source has %d rows", n)
	}

	// Bad rows never publish: wrong arity and wrong type both 400.
	if resp := post(t, ts, "/api/append", map[string]any{"table": "readings", "rows": [][]any{{"m0"}}}, nil); resp.StatusCode != 400 {
		t.Fatalf("short row: status %d", resp.StatusCode)
	}
	if resp := post(t, ts, "/api/append", map[string]any{"table": "readings", "rows": [][]any{{true, 1.0}}}, nil); resp.StatusCode != 400 {
		t.Fatalf("bad type: status %d", resp.StatusCode)
	}
	if resp := post(t, ts, "/api/append", map[string]any{"table": "nope", "rows": [][]any{{"a", 1.0}}}, nil); resp.StatusCode != 404 {
		t.Fatalf("missing table: status %d", resp.StatusCode)
	}
}

// TestConcurrentQueryCleanRace fires /api/query and /api/clean at ONE
// session id concurrently — the race the per-session mutex fixes
// (handleClean's applied append + rollback truncation used to interleave
// with a concurrent query's session writes). Run under -race.
func TestConcurrentQueryCleanRace(t *testing.T) {
	ts := testServer(t)
	sql := datasets.FECDailySQL("McCain")

	// Seed the session: query, then debug so clean has explanations.
	var q struct {
		Rows [][]any `json:"rows"`
	}
	post(t, ts, "/api/query", map[string]any{"session": "race", "sql": sql}, &q)
	var suspect []int
	for i, row := range q.Rows {
		if tot, ok := row[1].(float64); ok && tot < 0 {
			suspect = append(suspect, i)
		}
	}
	post(t, ts, "/api/debug", map[string]any{
		"session": "race", "suspect": suspect, "aggItem": -1,
		"metric": "toolow", "metricParams": map[string]float64{"c": 0},
	}, nil)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var body map[string]any
				var path string
				if w%2 == 0 {
					path, body = "/api/query", map[string]any{"session": "race", "sql": sql}
				} else {
					idx := 0
					path, body = "/api/clean", map[string]any{"session": "race", "explanation": &idx}
				}
				b, _ := json.Marshal(body)
				resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				resp.Body.Close()
				// Clean may legitimately 400 once a concurrent query
				// cleared lastDbg; only transport-level failures and 5xx
				// are errors here.
				if resp.StatusCode >= 500 {
					t.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestDebugAdvanceAfterAppend walks the full monitoring loop over the
// API: query → debug → append → debug. The second debug must see the
// appended rows (the handler refreshes the stale session result
// incrementally) and must advance the carried analysis rather than
// rebuild it.
func TestDebugAdvanceAfterAppend(t *testing.T) {
	db := streamDB(t)
	srv := New(db)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	sql := "SELECT mote, sum(temp) AS total FROM readings GROUP BY mote"
	var q struct {
		Rows [][]any `json:"rows"`
	}
	post(t, ts, "/api/query", map[string]any{"session": "s", "sql": sql}, &q)

	debugReq := map[string]any{
		"session": "s", "suspect": []int{0, 1}, "aggItem": -1,
		"metric": "toohigh", "metricParams": map[string]float64{"c": 100},
	}
	var d1 struct {
		Eps         float64 `json:"eps"`
		LineageSize int     `json:"lineageSize"`
		Incremental bool    `json:"incremental"`
		Mode        string  `json:"mode"`
	}
	if resp := post(t, ts, "/api/debug", debugReq, &d1); resp.StatusCode != 200 {
		t.Fatalf("first debug: status %d", resp.StatusCode)
	}
	if d1.Mode != "full" || d1.Incremental {
		t.Fatalf("first debug plan: %+v", d1)
	}

	// Ingest a batch, then debug again WITHOUT re-querying: the handler
	// must advance the session result and the carried analysis itself.
	rows := make([][]any, 40)
	for i := range rows {
		rows[i] = []any{fmt.Sprintf("m%d", i%4), 50.0}
	}
	if resp := post(t, ts, "/api/append", map[string]any{"table": "readings", "rows": rows}, nil); resp.StatusCode != 200 {
		t.Fatalf("append: status %d", resp.StatusCode)
	}
	var d2 struct {
		Eps         float64 `json:"eps"`
		LineageSize int     `json:"lineageSize"`
		Incremental bool    `json:"incremental"`
		Mode        string  `json:"mode"`
	}
	if resp := post(t, ts, "/api/debug", debugReq, &d2); resp.StatusCode != 200 {
		t.Fatalf("second debug: status %d", resp.StatusCode)
	}
	if !d2.Incremental {
		t.Fatalf("debug after append did not advance: %+v", d2)
	}
	if d2.Mode != "carried" && d2.Mode != "reexpanded" {
		t.Fatalf("debug after append mode %q", d2.Mode)
	}
	if d2.LineageSize <= d1.LineageSize {
		t.Fatalf("debug after append is blind to the batch: lineage %d → %d", d1.LineageSize, d2.LineageSize)
	}
	srv.mu.Lock()
	sess := srv.sessions["s"]
	srv.mu.Unlock()
	sess.acquire(context.Background())
	n := sess.res.Source.NumRows()
	sess.release()
	if n != 240 {
		t.Fatalf("session result not refreshed: %d rows", n)
	}
}

// TestDebugSuspectRemapAcrossAppend: the client picks suspects by
// output row index against the result it saw; when an append lands
// before the debug and the refreshed result re-orders (ORDER BY over
// shifted totals), the handler must remap the indexes by group
// identity — the debug answers about the group the client pointed at,
// not whatever now occupies that row number.
func TestDebugSuspectRemapAcrossAppend(t *testing.T) {
	db := streamDB(t)
	srv := New(db)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	sql := "SELECT mote, sum(temp) AS total FROM readings GROUP BY mote ORDER BY total DESC"
	var q struct {
		Rows [][]any `json:"rows"`
	}
	post(t, ts, "/api/query", map[string]any{"session": "s", "sql": sql}, &q)
	// Suspect the current top row (50 lineage rows), then boost two
	// OTHER motes past it, so after the refresh row 0 is a different,
	// bigger group (80 rows) — a debug without the remap would answer
	// about that one instead.
	suspect := 0
	topMote := q.Rows[0][0].(string)
	var boost []string
	for _, m := range []string{"m0", "m1", "m2", "m3"} {
		if m != topMote && len(boost) < 2 {
			boost = append(boost, m)
		}
	}
	rows := make([][]any, 60)
	for i := range rows {
		rows[i] = []any{boost[i%2], 500.0}
	}
	post(t, ts, "/api/append", map[string]any{"table": "readings", "rows": rows}, nil)

	var d struct {
		LineageSize int    `json:"lineageSize"`
		Incremental bool   `json:"incremental"`
		Error       string `json:"error"`
	}
	resp := post(t, ts, "/api/debug", map[string]any{
		"session": "s", "suspect": []int{suspect}, "aggItem": -1,
		"metric": "toohigh", "metricParams": map[string]float64{"c": 0},
	}, &d)
	if resp.StatusCode != 200 {
		t.Fatalf("debug: status %d (%s)", resp.StatusCode, d.Error)
	}
	if d.LineageSize != 50 {
		t.Fatalf("debugged the wrong group after the refresh: lineage %d, want %s's 50", d.LineageSize, topMote)
	}
}

// TestConcurrentAppendDebugRace fires /api/append and /api/debug at ONE
// session concurrently — the streaming monitoring loop's two halves.
// Appends publish copy-on-write table versions while debugs advance the
// cached result and carried analysis; under -race this pins the
// engine's snapshot isolation and the per-session mutex across the
// whole carry chain. Responses may legitimately be 400 (e.g. a suspect
// index out of range after a re-query) but never 5xx, and the server
// must not deadlock.
func TestConcurrentAppendDebugRace(t *testing.T) {
	db := streamDB(t)
	srv := New(db)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	sql := "SELECT mote, sum(temp) AS total FROM readings GROUP BY mote"
	post(t, ts, "/api/query", map[string]any{"session": "race", "sql": sql}, nil)

	var wg sync.WaitGroup
	iters := 12
	if testing.Short() {
		iters = 6
	}
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var path string
				var body map[string]any
				switch w % 3 {
				case 0:
					path = "/api/append"
					body = map[string]any{"table": "readings", "rows": [][]any{
						{fmt.Sprintf("m%d", i%5), float64(i)},
						{"m0", 25.5},
					}}
				case 1:
					path = "/api/debug"
					body = map[string]any{
						"session": "race", "suspect": []int{0, 1}, "aggItem": -1,
						"metric": "toohigh", "metricParams": map[string]float64{"c": 100},
					}
				default:
					path = "/api/query"
					body = map[string]any{"session": "race", "sql": sql}
				}
				b, _ := json.Marshal(body)
				resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					t.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSessionEviction pins the session-map bounds: LRU count cap and
// idle TTL expiry, with the active session never evicted.
func TestSessionEviction(t *testing.T) {
	db := streamDB(t)
	srv := New(db)
	srv.SetSessionLimits(3, time.Hour)
	now := time.Unix(1_000_000, 0)
	srv.now = func() time.Time { return now }

	for i := 0; i < 10; i++ {
		srv.session(fmt.Sprintf("s%d", i))
		now = now.Add(time.Second)
	}
	srv.mu.Lock()
	n := len(srv.sessions)
	_, hasLast := srv.sessions["s9"]
	_, hasFirst := srv.sessions["s0"]
	srv.mu.Unlock()
	if n > 3 {
		t.Fatalf("session map not bounded: %d entries", n)
	}
	if !hasLast || hasFirst {
		t.Fatalf("LRU evicted wrong sessions (s9=%v s0=%v)", hasLast, hasFirst)
	}

	// TTL: idle sessions expire on the next access.
	now = now.Add(2 * time.Hour)
	srv.session("fresh")
	srv.mu.Lock()
	n = len(srv.sessions)
	_, hasFresh := srv.sessions["fresh"]
	_, hasS9 := srv.sessions["s9"]
	srv.mu.Unlock()
	if !hasFresh || hasS9 || n != 1 {
		t.Fatalf("TTL sweep failed: n=%d fresh=%v s9=%v", n, hasFresh, hasS9)
	}
}
