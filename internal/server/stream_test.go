package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/engine"
)

// streamDB builds a tiny database with a simple groupable table for the
// ingest tests.
func streamDB(t *testing.T) *engine.DB {
	t.Helper()
	tbl := engine.MustNewTable("readings", engine.NewSchema("mote", engine.TString, "temp", engine.TFloat))
	for i := 0; i < 200; i++ {
		tbl.MustAppendRow(engine.NewString(fmt.Sprintf("m%d", i%4)), engine.NewFloat(float64(i%30)))
	}
	db := engine.NewDB()
	db.Register(tbl)
	return db
}

// TestAppendEndpointAndIncrementalRequery walks the streaming loop:
// query, ingest a batch through /api/append, re-query. The second
// result must include the batch, and the server must have advanced the
// cached result incrementally rather than rescanning.
func TestAppendEndpointAndIncrementalRequery(t *testing.T) {
	db := streamDB(t)
	srv := New(db)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	sql := "SELECT mote, sum(temp) AS total FROM readings GROUP BY mote"
	var q1 struct {
		Rows [][]any `json:"rows"`
	}
	post(t, ts, "/api/query", map[string]any{"session": "s", "sql": sql}, &q1)
	if len(q1.Rows) != 4 {
		t.Fatalf("initial groups: %d", len(q1.Rows))
	}

	var ap struct {
		Appended int    `json:"appended"`
		Rows     int    `json:"rows"`
		Error    string `json:"error"`
	}
	resp := post(t, ts, "/api/append", map[string]any{
		"table": "readings",
		"rows": [][]any{
			{"m0", 1000.0},
			{"m9", 5.0}, // brand-new group
			{nil, 3.0},
		},
	}, &ap)
	if resp.StatusCode != 200 || ap.Appended != 3 || ap.Rows != 203 {
		t.Fatalf("append: status=%d %+v", resp.StatusCode, ap)
	}

	var q2 struct {
		Rows [][]any `json:"rows"`
	}
	post(t, ts, "/api/query", map[string]any{"session": "s", "sql": sql}, &q2)
	if len(q2.Rows) != 6 { // m0..m3, m9, NULL
		t.Fatalf("groups after append: %d", len(q2.Rows))
	}
	srv.mu.Lock()
	sess := srv.sessions["s"]
	srv.mu.Unlock()
	sess.mu.Lock()
	incremental := sess.res.Plan.Incremental
	n := sess.res.Source.NumRows()
	sess.mu.Unlock()
	if !incremental {
		t.Fatal("re-query after append did not take the incremental path")
	}
	if n != 203 {
		t.Fatalf("advanced source has %d rows", n)
	}

	// Bad rows never publish: wrong arity and wrong type both 400.
	if resp := post(t, ts, "/api/append", map[string]any{"table": "readings", "rows": [][]any{{"m0"}}}, nil); resp.StatusCode != 400 {
		t.Fatalf("short row: status %d", resp.StatusCode)
	}
	if resp := post(t, ts, "/api/append", map[string]any{"table": "readings", "rows": [][]any{{true, 1.0}}}, nil); resp.StatusCode != 400 {
		t.Fatalf("bad type: status %d", resp.StatusCode)
	}
	if resp := post(t, ts, "/api/append", map[string]any{"table": "nope", "rows": [][]any{{"a", 1.0}}}, nil); resp.StatusCode != 404 {
		t.Fatalf("missing table: status %d", resp.StatusCode)
	}
}

// TestConcurrentQueryCleanRace fires /api/query and /api/clean at ONE
// session id concurrently — the race the per-session mutex fixes
// (handleClean's applied append + rollback truncation used to interleave
// with a concurrent query's session writes). Run under -race.
func TestConcurrentQueryCleanRace(t *testing.T) {
	ts := testServer(t)
	sql := datasets.FECDailySQL("McCain")

	// Seed the session: query, then debug so clean has explanations.
	var q struct {
		Rows [][]any `json:"rows"`
	}
	post(t, ts, "/api/query", map[string]any{"session": "race", "sql": sql}, &q)
	var suspect []int
	for i, row := range q.Rows {
		if tot, ok := row[1].(float64); ok && tot < 0 {
			suspect = append(suspect, i)
		}
	}
	post(t, ts, "/api/debug", map[string]any{
		"session": "race", "suspect": suspect, "aggItem": -1,
		"metric": "toolow", "metricParams": map[string]float64{"c": 0},
	}, nil)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var body map[string]any
				var path string
				if w%2 == 0 {
					path, body = "/api/query", map[string]any{"session": "race", "sql": sql}
				} else {
					idx := 0
					path, body = "/api/clean", map[string]any{"session": "race", "explanation": &idx}
				}
				b, _ := json.Marshal(body)
				resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				resp.Body.Close()
				// Clean may legitimately 400 once a concurrent query
				// cleared lastDbg; only transport-level failures and 5xx
				// are errors here.
				if resp.StatusCode >= 500 {
					t.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSessionEviction pins the session-map bounds: LRU count cap and
// idle TTL expiry, with the active session never evicted.
func TestSessionEviction(t *testing.T) {
	db := streamDB(t)
	srv := New(db)
	srv.SetSessionLimits(3, time.Hour)
	now := time.Unix(1_000_000, 0)
	srv.now = func() time.Time { return now }

	for i := 0; i < 10; i++ {
		srv.session(fmt.Sprintf("s%d", i))
		now = now.Add(time.Second)
	}
	srv.mu.Lock()
	n := len(srv.sessions)
	_, hasLast := srv.sessions["s9"]
	_, hasFirst := srv.sessions["s0"]
	srv.mu.Unlock()
	if n > 3 {
		t.Fatalf("session map not bounded: %d entries", n)
	}
	if !hasLast || hasFirst {
		t.Fatalf("LRU evicted wrong sessions (s9=%v s0=%v)", hasLast, hasFirst)
	}

	// TTL: idle sessions expire on the next access.
	now = now.Add(2 * time.Hour)
	srv.session("fresh")
	srv.mu.Lock()
	n = len(srv.sessions)
	_, hasFresh := srv.sessions["fresh"]
	_, hasS9 := srv.sessions["s9"]
	srv.mu.Unlock()
	if !hasFresh || hasS9 || n != 1 {
		t.Fatalf("TTL sweep failed: n=%d fresh=%v s9=%v", n, hasFresh, hasS9)
	}
}
