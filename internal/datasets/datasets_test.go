package datasets

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/exec"
)

func TestIntelDeterministic(t *testing.T) {
	a, ta := Intel(IntelConfig{Rows: 5000, Seed: 3})
	b, tb := Intel(IntelConfig{Rows: 5000, Seed: 3})
	if a.NumRows() != b.NumRows() || a.NumRows() != 5000 {
		t.Fatalf("rows: %d vs %d", a.NumRows(), b.NumRows())
	}
	for r := 0; r < 100; r++ {
		for c := 0; c < a.NumCols(); c++ {
			if !engine.Equal(a.Value(r, c), b.Value(r, c)) {
				t.Fatalf("row %d col %d differ", r, c)
			}
		}
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatal("truth labels differ across runs")
		}
	}
	c, _ := Intel(IntelConfig{Rows: 5000, Seed: 4})
	same := true
	for r := 0; r < 100 && same; r++ {
		if !engine.Equal(a.Value(r, 3), c.Value(r, 3)) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical temperatures")
	}
}

func TestIntelAnomalyShape(t *testing.T) {
	tbl, truth := Intel(IntelConfig{Rows: 30_000, Seed: 1})
	tempCol := tbl.Schema().ColIndex("temperature")
	voltCol := tbl.Schema().ColIndex("voltage")
	moteCol := tbl.Schema().ColIndex("moteid")
	anomalous, motes := 0, map[int64]bool{}
	for i := 0; i < tbl.NumRows(); i++ {
		if !truth[i] {
			continue
		}
		anomalous++
		temp := tbl.Value(i, tempCol).Float()
		volt := tbl.Value(i, voltCol).Float()
		if temp < 90 {
			t.Errorf("anomalous row %d temp %.1f < 90", i, temp)
		}
		if volt > 2.45 {
			t.Errorf("anomalous row %d voltage %.2f > 2.45", i, volt)
		}
		motes[tbl.Value(i, moteCol).Int()] = true
	}
	if anomalous == 0 {
		t.Fatal("no anomalies generated")
	}
	frac := float64(anomalous) / float64(tbl.NumRows())
	if frac < 0.005 || frac > 0.25 {
		t.Errorf("anomaly fraction %.3f out of range", frac)
	}
	if len(motes) != 3 {
		t.Errorf("failing motes: %d, want 3", len(motes))
	}
	// Clean rows look like an office.
	clean := 0
	for i := 0; i < tbl.NumRows() && clean < 1000; i++ {
		if truth[i] {
			continue
		}
		clean++
		temp := tbl.Value(i, tempCol).Float()
		if temp < 55 || temp > 85 {
			t.Errorf("clean row %d temp %.1f out of office range", i, temp)
		}
	}
}

func TestIntelWindowQueryRuns(t *testing.T) {
	db, _ := IntelDB(IntelConfig{Rows: 10_000, Seed: 2})
	res, err := exec.RunSQL(db, IntelWindowSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() < 2 {
		t.Errorf("windows: %d", res.NumRows())
	}
	// Suspicious windows must exist (stddev > 10).
	stdCol := res.Table.Schema().ColIndex("std_temp")
	found := false
	for r := 0; r < res.Table.NumRows(); r++ {
		v := res.Table.Value(r, stdCol)
		if !v.IsNull() && v.Float() > 10 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no high-stddev window; Figure 4 shape broken")
	}
}

func TestFECDeterministicAndLabeled(t *testing.T) {
	a, ta := FEC(FECConfig{Rows: 20_000, Seed: 5})
	b, tb := FEC(FECConfig{Rows: 20_000, Seed: 5})
	if a.NumRows() != 20_000 {
		t.Fatalf("rows: %d", a.NumRows())
	}
	for r := 0; r < 100; r++ {
		if !engine.Equal(a.Value(r, 5), b.Value(r, 5)) {
			t.Fatal("amounts differ across same-seed runs")
		}
	}
	_ = ta
	_ = tb
}

func TestFECAnomalyShape(t *testing.T) {
	cfg := FECConfig{Rows: 30_000, Seed: 1}
	tbl, truth := FEC(cfg)
	memoCol := tbl.Schema().ColIndex("memo")
	amtCol := tbl.Schema().ColIndex("amount")
	dayCol := tbl.Schema().ColIndex("day")
	candCol := tbl.Schema().ColIndex("candidate")
	spikes := 0
	for i := 0; i < tbl.NumRows(); i++ {
		if !truth[i] {
			// Non-anomalous rows never carry the reattribution memo.
			if tbl.Value(i, memoCol).Str() == MemoReattribution {
				t.Fatalf("clean row %d has reattribution memo", i)
			}
			continue
		}
		spikes++
		if tbl.Value(i, memoCol).Str() != MemoReattribution {
			t.Errorf("anomalous row %d memo %q", i, tbl.Value(i, memoCol).Str())
		}
		if tbl.Value(i, amtCol).Float() >= 0 {
			t.Errorf("anomalous row %d amount %.0f >= 0", i, tbl.Value(i, amtCol).Float())
		}
		day := tbl.Value(i, dayCol).Int()
		if day < 490 || day > 510 {
			t.Errorf("anomalous row %d day %d outside spike window", i, day)
		}
		if tbl.Value(i, candCol).Str() != "McCain" {
			t.Errorf("anomalous row %d candidate %q", i, tbl.Value(i, candCol).Str())
		}
	}
	if spikes != 400 {
		t.Errorf("spike rows: %d, want 400", spikes)
	}
}

func TestFECDailyQueryShowsNegativeSpike(t *testing.T) {
	db, _ := FECDB(FECConfig{Rows: 60_000, Seed: 1})
	res, err := exec.RunSQL(db, FECDailySQL("McCain"))
	if err != nil {
		t.Fatal(err)
	}
	totCol := res.Table.Schema().ColIndex("total")
	dayCol := res.Table.Schema().ColIndex("day")
	worst, worstDay := 0.0, int64(-1)
	for r := 0; r < res.Table.NumRows(); r++ {
		v := res.Table.Value(r, totCol)
		if !v.IsNull() && v.Float() < worst {
			worst = v.Float()
			worstDay = res.Table.Value(r, dayCol).Int()
		}
	}
	if worst >= 0 {
		t.Fatal("no negative day; Figure 7 spike missing")
	}
	if worstDay < 490 || worstDay > 510 {
		t.Errorf("worst day %d not near 500", worstDay)
	}
}

func TestTruthScore(t *testing.T) {
	truth := NewTruth([]bool{true, true, false, false, false})
	if truth.NumPositive() != 2 {
		t.Errorf("positives: %d", truth.NumPositive())
	}
	p, r, f1 := truth.Score([]int{0, 2}, nil)
	if p != 0.5 || r != 0.5 || f1 != 0.5 {
		t.Errorf("score: %v %v %v", p, r, f1)
	}
	// Restricted population.
	p, r, _ = truth.Score([]int{0}, []int{0, 2})
	if p != 1 || r != 1 {
		t.Errorf("population-restricted: %v %v", p, r)
	}
	// Degenerate cases.
	if p, r, f1 := truth.Score(nil, nil); p != 0 || r != 0 || f1 != 0 {
		t.Error("empty prediction should be zeros")
	}
	if !truth.Label(0) || truth.Label(2) || truth.Label(99) {
		t.Error("Label wrong")
	}
}

func TestIntelSchemaStable(t *testing.T) {
	s := IntelSchema()
	want := []string{"ts", "epoch", "moteid", "temperature", "humidity", "light", "voltage"}
	for i, n := range want {
		if s[i].Name != n {
			t.Errorf("col %d = %s, want %s", i, s[i].Name, n)
		}
	}
	f := FECSchema()
	if f.ColIndex("memo") < 0 || f.ColIndex("amount") < 0 {
		t.Error("FEC schema missing columns")
	}
}
