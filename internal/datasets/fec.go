package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/engine"
)

// FECConfig parameterizes the synthetic campaign-contributions table.
type FECConfig struct {
	// Days is the campaign length in days (default 600 — the paper's
	// Figure 7 spans "since 11/14/2006" with the anomaly near day 500).
	Days int
	// Rows is the total donation count (default 150_000).
	Rows int
	// Start is day 0 (default 2006-11-14, per Figure 7's caption).
	Start time.Time
	// Candidates to generate (default Obama, McCain, Clinton, Romney).
	Candidates []string
	// SpikeCandidate receives the reattribution anomaly (default
	// "McCain", per the walkthrough).
	SpikeCandidate string
	// SpikeDay centers the negative spike (default 500).
	SpikeDay int
	// SpikeWidth spreads the anomaly over ±SpikeWidth days (default 5).
	SpikeWidth int
	// SpikeCount is the number of reattribution rows (default 400).
	SpikeCount int
	// RefundRate is the background rate of ordinary (non-anomalous)
	// negative refund rows (default 0.002).
	RefundRate float64
	// Seed makes generation deterministic (default 1).
	Seed int64
}

func (c *FECConfig) defaults() {
	if c.Days <= 0 {
		c.Days = 600
	}
	if c.Rows <= 0 {
		c.Rows = 150_000
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2006, 11, 14, 0, 0, 0, 0, time.UTC)
	}
	if len(c.Candidates) == 0 {
		c.Candidates = []string{"Obama", "McCain", "Clinton", "Romney"}
	}
	if c.SpikeCandidate == "" {
		c.SpikeCandidate = "McCain"
	}
	if c.SpikeDay <= 0 {
		c.SpikeDay = 500
	}
	if c.SpikeWidth <= 0 {
		c.SpikeWidth = 5
	}
	if c.SpikeCount <= 0 {
		c.SpikeCount = 400
	}
	if c.RefundRate <= 0 {
		c.RefundRate = 0.002
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// FECSchema mirrors the FEC contribution file's useful columns: the
// candidate, donor geography and occupation, the amount, the
// contribution date (plus a precomputed campaign-day integer for easy
// grouping), and the free-text memo field the walkthrough pivots on.
func FECSchema() engine.Schema {
	return engine.NewSchema(
		"candidate", engine.TString,
		"state", engine.TString,
		"city", engine.TString,
		"occupation", engine.TString,
		"employer", engine.TString,
		"amount", engine.TFloat,
		"date", engine.TTime,
		"day", engine.TInt,
		"memo", engine.TString,
	)
}

var (
	fecStates = []string{"CA", "NY", "TX", "FL", "IL", "MA", "WA", "PA", "OH", "VA", "AZ", "CO", "GA", "NC", "MI"}
	fecCities = map[string][]string{
		"CA": {"LOS ANGELES", "SAN FRANCISCO", "SAN DIEGO", "SACRAMENTO"},
		"NY": {"NEW YORK", "BROOKLYN", "ALBANY", "BUFFALO"},
		"TX": {"HOUSTON", "DALLAS", "AUSTIN", "SAN ANTONIO"},
		"FL": {"MIAMI", "ORLANDO", "TAMPA", "JACKSONVILLE"},
		"IL": {"CHICAGO", "SPRINGFIELD", "EVANSTON"},
		"MA": {"BOSTON", "CAMBRIDGE", "SOMERVILLE"},
		"WA": {"SEATTLE", "SPOKANE", "TACOMA"},
		"PA": {"PHILADELPHIA", "PITTSBURGH", "HARRISBURG"},
		"OH": {"COLUMBUS", "CLEVELAND", "CINCINNATI"},
		"VA": {"ARLINGTON", "RICHMOND", "NORFOLK"},
		"AZ": {"PHOENIX", "TUCSON", "SCOTTSDALE"},
		"CO": {"DENVER", "BOULDER", "COLORADO SPRINGS"},
		"GA": {"ATLANTA", "SAVANNAH", "ATHENS"},
		"NC": {"CHARLOTTE", "RALEIGH", "DURHAM"},
		"MI": {"DETROIT", "ANN ARBOR", "GRAND RAPIDS"},
	}
	fecOccupations = []string{
		"RETIRED", "ATTORNEY", "PHYSICIAN", "HOMEMAKER", "ENGINEER",
		"PROFESSOR", "CONSULTANT", "TEACHER", "EXECUTIVE", "CEO",
		"INVESTOR", "BANKER", "SALES", "REAL ESTATE", "NOT EMPLOYED",
	}
	fecEmployers = []string{
		"SELF-EMPLOYED", "RETIRED", "NONE", "GOOGLE", "GOLDMAN SACHS",
		"HARVARD UNIVERSITY", "MICROSOFT", "EXXON", "GE", "IBM",
		"STATE OF CALIFORNIA", "US ARMY", "BANK OF AMERICA",
	}
	// MemoReattribution is the exact string the paper's walkthrough
	// discovers in the top predicate.
	MemoReattribution = "REATTRIBUTION TO SPOUSE"
	// MemoRefund marks ordinary refunds (background negatives that are
	// NOT the anomaly, to keep the learners honest).
	MemoRefund = "REFUND"
)

// FEC generates the donations table and the ground-truth labels (true =
// row belongs to the injected reattribution anomaly).
func FEC(cfg FECConfig) (*engine.Table, []bool) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := engine.MustNewTable("donations", FECSchema())
	t.Grow(cfg.Rows)
	truth := make([]bool, 0, cfg.Rows)

	// Candidate popularity weights and per-candidate campaign ramp.
	weights := make([]float64, len(cfg.Candidates))
	for i := range weights {
		weights[i] = 0.5 + rng.Float64()
	}
	var wsum float64
	for _, w := range weights {
		wsum += w
	}

	normalRows := cfg.Rows - cfg.SpikeCount
	if normalRows < 0 {
		normalRows = 0
	}
	for i := 0; i < normalRows; i++ {
		// Pick candidate by weight.
		target := rng.Float64() * wsum
		ci := 0
		for cum := 0.0; ci < len(weights); ci++ {
			cum += weights[ci]
			if cum >= target {
				break
			}
		}
		if ci >= len(cfg.Candidates) {
			ci = len(cfg.Candidates) - 1
		}
		cand := cfg.Candidates[ci]
		// Donations ramp up over the campaign with event spikes.
		day := int(math.Pow(rng.Float64(), 0.6) * float64(cfg.Days))
		if day >= cfg.Days {
			day = cfg.Days - 1
		}
		state := fecStates[rng.Intn(len(fecStates))]
		cities := fecCities[state]
		amount := donationAmount(rng)
		memo := ""
		if rng.Float64() < cfg.RefundRate {
			amount = -amount
			memo = MemoRefund
		}
		t.MustAppendRow(
			engine.NewString(cand),
			engine.NewString(state),
			engine.NewString(cities[rng.Intn(len(cities))]),
			engine.NewString(fecOccupations[rng.Intn(len(fecOccupations))]),
			engine.NewString(fecEmployers[rng.Intn(len(fecEmployers))]),
			engine.NewFloat(round2(amount)),
			engine.NewTime(cfg.Start.AddDate(0, 0, day)),
			engine.NewInt(int64(day)),
			engine.NewString(memo),
		)
		truth = append(truth, false)
	}

	// The anomaly: a burst of large negative "REATTRIBUTION TO SPOUSE"
	// rows for the spike candidate around SpikeDay. High-profile donors
	// (CEOs, executives) hiding donations by reattributing to spouses.
	for i := 0; i < cfg.SpikeCount; i++ {
		day := cfg.SpikeDay + rng.Intn(2*cfg.SpikeWidth+1) - cfg.SpikeWidth
		if day < 0 {
			day = 0
		}
		if day >= cfg.Days {
			day = cfg.Days - 1
		}
		state := fecStates[rng.Intn(len(fecStates))]
		cities := fecCities[state]
		amount := -(1000 + rng.Float64()*1300) // −1000..−2300, legal-max scale
		occ := []string{"CEO", "EXECUTIVE", "INVESTOR"}[rng.Intn(3)]
		t.MustAppendRow(
			engine.NewString(cfg.SpikeCandidate),
			engine.NewString(state),
			engine.NewString(cities[rng.Intn(len(cities))]),
			engine.NewString(occ),
			engine.NewString(fecEmployers[rng.Intn(len(fecEmployers))]),
			engine.NewFloat(round2(amount)),
			engine.NewTime(cfg.Start.AddDate(0, 0, day)),
			engine.NewInt(int64(day)),
			engine.NewString(MemoReattribution),
		)
		truth = append(truth, true)
	}
	return t, truth
}

// FECDB wraps FEC in a one-table database.
func FECDB(cfg FECConfig) (*engine.DB, []bool) {
	t, truth := FEC(cfg)
	db := engine.NewDB()
	db.Register(t)
	return db, truth
}

// FECDailySQL builds the Figure 7 query: a candidate's total received
// donations per day.
func FECDailySQL(candidate string) string {
	return fmt.Sprintf(`SELECT day, sum(amount) AS total FROM donations WHERE candidate = '%s' GROUP BY day ORDER BY day`, candidate)
}

// donationAmount draws a realistic positive donation: clustered at
// round numbers with a log-normal tail capped at the $2300 limit era.
func donationAmount(rng *rand.Rand) float64 {
	r := rng.Float64()
	switch {
	case r < 0.25:
		return 25
	case r < 0.45:
		return 50
	case r < 0.60:
		return 100
	case r < 0.70:
		return 250
	case r < 0.78:
		return 500
	case r < 0.84:
		return 1000
	case r < 0.88:
		return 2300
	default:
		amt := math.Exp(rng.NormFloat64()*1.1 + 4.2)
		if amt > 2300 {
			amt = 2300
		}
		if amt < 5 {
			amt = 5
		}
		return amt
	}
}

// Truth is a convenience wrapper for scoring explanations against the
// generator's labels.
type Truth struct {
	labels []bool
	n      int
}

// NewTruth wraps a label slice.
func NewTruth(labels []bool) *Truth {
	n := 0
	for _, l := range labels {
		if l {
			n++
		}
	}
	return &Truth{labels: labels, n: n}
}

// NumPositive returns the number of ground-truth anomalous rows.
func (t *Truth) NumPositive() int { return t.n }

// Label reports whether row is anomalous.
func (t *Truth) Label(row int) bool { return row >= 0 && row < len(t.labels) && t.labels[row] }

// Score computes precision/recall/F1 of a predicted row set against the
// ground truth restricted to the given population (nil = all rows).
func (t *Truth) Score(predicted []int, population []int) (precision, recall, f1 float64) {
	var popPos int
	if population == nil {
		popPos = t.n
	} else {
		for _, r := range population {
			if t.Label(r) {
				popPos++
			}
		}
	}
	if len(predicted) == 0 || popPos == 0 {
		return 0, 0, 0
	}
	hit := 0
	for _, r := range predicted {
		if t.Label(r) {
			hit++
		}
	}
	precision = float64(hit) / float64(len(predicted))
	recall = float64(hit) / float64(popPos)
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return
}
