// Package datasets generates the two demo datasets of the paper with
// known ground truth.
//
// The paper demos on (a) the 2012 FEC presidential campaign
// contributions download and (b) the Intel Lab sensor trace (2.3M
// readings, 54 motes, ~2/minute, one month). Neither raw download is
// available offline, so this package synthesizes statistically faithful
// stand-ins that reproduce the *anomalies the demo walkthroughs rely
// on* — and, unlike the real data, label every anomalous row, enabling
// the quantitative precision/recall evaluation in EXPERIMENTS.md. See
// DESIGN.md §2 for the substitution rationale.
package datasets

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/engine"
)

// IntelConfig parameterizes the synthetic Intel Lab sensor trace.
type IntelConfig struct {
	// Motes is the sensor count (default 54, as deployed).
	Motes int
	// Rows is the total reading count (default 100_000; the real trace
	// has 2.3M — use that for the full-scale run).
	Rows int
	// Start is the first reading's timestamp (default 2004-02-28 00:00
	// UTC, matching the real deployment's era).
	Start time.Time
	// EpochSeconds is the sampling period (default 31s ≈ twice/minute).
	EpochSeconds int
	// FailingMotes is how many motes suffer the battery-death failure
	// (default 3). The real trace's infamous artifact: as a mote's
	// battery voltage sags below ~2.4V its temperature readings climb
	// above 100°F and grow increasingly absurd.
	FailingMotes int
	// FailAfterFrac is the fraction of the trace after which failing
	// motes begin to die (default 0.35).
	FailAfterFrac float64
	// Seed makes generation deterministic (default 1).
	Seed int64
}

func (c *IntelConfig) defaults() {
	if c.Motes <= 0 {
		c.Motes = 54
	}
	if c.Rows <= 0 {
		c.Rows = 100_000
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2004, 2, 28, 0, 0, 0, 0, time.UTC)
	}
	if c.EpochSeconds <= 0 {
		c.EpochSeconds = 31
	}
	if c.FailingMotes < 0 {
		c.FailingMotes = 0
	} else if c.FailingMotes == 0 {
		c.FailingMotes = 3
	}
	if c.FailAfterFrac <= 0 || c.FailAfterFrac >= 1 {
		c.FailAfterFrac = 0.35
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// IntelSchema is the readings table layout, mirroring the real trace's
// columns (epoch, moteid, temperature, humidity, light, voltage) plus a
// unix-seconds ts column.
func IntelSchema() engine.Schema {
	return engine.NewSchema(
		"ts", engine.TTime,
		"epoch", engine.TInt,
		"moteid", engine.TInt,
		"temperature", engine.TFloat,
		"humidity", engine.TFloat,
		"light", engine.TFloat,
		"voltage", engine.TFloat,
	)
}

// Intel generates the readings table. The returned truth slice is
// parallel to row ids: truth[i] is true when row i was produced by the
// battery-failure error process (the ground-truth D*).
func Intel(cfg IntelConfig) (*engine.Table, []bool) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := engine.MustNewTable("readings", IntelSchema())
	t.Grow(cfg.Rows)
	truth := make([]bool, 0, cfg.Rows)

	// Pick the failing motes deterministically: spread across the range.
	failing := make(map[int]bool, cfg.FailingMotes)
	for len(failing) < cfg.FailingMotes && len(failing) < cfg.Motes {
		failing[1+rng.Intn(cfg.Motes)] = true
	}
	// Per-mote personality: small temperature offset and noise level.
	offset := make([]float64, cfg.Motes+1)
	noise := make([]float64, cfg.Motes+1)
	for m := 1; m <= cfg.Motes; m++ {
		offset[m] = rng.NormFloat64() * 1.2
		noise[m] = 0.3 + rng.Float64()*0.4
	}
	// Voltage decay rate for failing motes (per epoch fraction).
	// Iterate in sorted mote order: map iteration order would make the
	// generator nondeterministic for a fixed seed.
	failStart := make(map[int]float64, len(failing))
	failingSorted := make([]int, 0, len(failing))
	for m := range failing {
		failingSorted = append(failingSorted, m)
	}
	sort.Ints(failingSorted)
	for _, m := range failingSorted {
		failStart[m] = cfg.FailAfterFrac + rng.Float64()*0.25
	}

	epochs := (cfg.Rows + cfg.Motes - 1) / cfg.Motes
	rowCount := 0
	for e := 0; e < epochs && rowCount < cfg.Rows; e++ {
		frac := float64(e) / float64(max(1, epochs-1))
		ts := cfg.Start.Add(time.Duration(e*cfg.EpochSeconds) * time.Second)
		// Diurnal temperature cycle: ~68°F base, ±4°F over the day.
		dayFrac := float64(ts.Hour()*3600+ts.Minute()*60+ts.Second()) / 86400
		baseTemp := 68 + 4*math.Sin(2*math.Pi*(dayFrac-0.3))
		baseHum := 40 - 6*math.Sin(2*math.Pi*(dayFrac-0.3))
		// Lights on during work hours.
		baseLight := 80.0
		if dayFrac > 0.33 && dayFrac < 0.75 {
			baseLight = 450
		}
		for m := 1; m <= cfg.Motes && rowCount < cfg.Rows; m++ {
			temp := baseTemp + offset[m] + rng.NormFloat64()*noise[m]
			hum := baseHum + rng.NormFloat64()*1.5
			light := baseLight * (0.8 + rng.Float64()*0.4)
			volt := 2.68 - 0.1*frac + rng.NormFloat64()*0.005

			anomalous := false
			if failing[m] && frac >= failStart[m] {
				// Battery death: voltage sags fast; the ADC reference
				// drifts and temperature readings shoot past 100°F,
				// worsening as the battery dies (the real trace tops out
				// near 122°F and beyond).
				died := (frac - failStart[m]) / math.Max(1e-9, 1-failStart[m])
				volt = 2.4 - 0.25*died + rng.NormFloat64()*0.01
				temp = 100 + 35*died + rng.NormFloat64()*3
				hum = -4 + rng.NormFloat64()*2 // humidity also goes haywire
				anomalous = true
			}
			t.MustAppendRow(
				engine.NewTime(ts),
				engine.NewInt(int64(e)),
				engine.NewInt(int64(m)),
				engine.NewFloat(round2(temp)),
				engine.NewFloat(round2(hum)),
				engine.NewFloat(round2(light)),
				engine.NewFloat(round4(volt)),
			)
			truth = append(truth, anomalous)
			rowCount++
		}
	}
	return t, truth
}

// IntelDB wraps Intel in a one-table database.
func IntelDB(cfg IntelConfig) (*engine.DB, []bool) {
	t, truth := Intel(cfg)
	db := engine.NewDB()
	db.Register(t)
	return db, truth
}

// IntelWindowSQL is the Figure 4 query: average and spread of
// temperature in 30-minute windows. The epoch column advances once per
// EpochSeconds, so 30 minutes is 1800/EpochSeconds epochs; bucketing on
// the ts unix seconds is simpler and exact.
const IntelWindowSQL = `SELECT bucket(epoch(ts), 1800) AS w30, avg(temperature) AS avg_temp, stddev(temperature) AS std_temp FROM readings GROUP BY bucket(epoch(ts), 1800) ORDER BY w30`

func round2(f float64) float64 { return math.Round(f*100) / 100 }
func round4(f float64) float64 { return math.Round(f*10000) / 10000 }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
