package predicate

import "repro/internal/engine"

// Zone-map pruning: before faulting an out-of-core segment's chunk to
// build a clause mask, the index consults the segment's zone map. A
// provably-none segment leaves its mask chunk all-zero and a
// provably-all segment fills it, in both cases without touching disk.
// The verdicts must be exact, not heuristic — a mask bit is a promise —
// so the NaN and NULL rules below mirror engine.Compare precisely: NaN
// compares equal to everything (cmp == 0), NULL never matches.

// zoneVerdict is the outcome of consulting a zone map for one clause
// over one whole segment.
type zoneVerdict int

const (
	zoneScan zoneVerdict = iota // undecided: fault and scan
	zoneNone                    // no row matches: leave chunk zero
	zoneAll                     // every row matches: fill chunk
)

// zoneNumericVerdict decides a numeric clause op/cv against z. cv is
// the clause value as float64 (possibly NaN — then every comparison
// below is false and the verdict degrades to zoneScan, conservatively).
func zoneNumericVerdict(z engine.ZoneInfo, op Op, cv float64) zoneVerdict {
	if z.Rows == 0 {
		return zoneScan
	}
	// NaN cells compare equal to everything, so they match exactly when
	// cmp==0 satisfies the op.
	nanMatches := z.NaNCount > 0 && opMatchesCmp(op, 0)
	nanMisses := z.NaNCount > 0 && !opMatchesCmp(op, 0)

	none := !nanMatches
	if none && z.HasRange {
		none = rangeNoneMatch(z.Min, z.Max, op, cv)
	}
	if none {
		return zoneNone
	}

	all := z.NullCount == 0 && !nanMisses
	if all && z.HasRange {
		all = rangeAllMatch(z.Min, z.Max, op, cv)
	}
	if all && !z.HasRange && z.NaNCount == 0 {
		// No finite values and no NaN with NullCount == 0 is an empty
		// segment contradiction; don't trust it.
		all = false
	}
	if all {
		return zoneAll
	}
	return zoneScan
}

// rangeNoneMatch reports that NO finite value in [min, max] can
// satisfy op against cv. All comparisons are false when cv is NaN, so
// a NaN clause value never proves none.
func rangeNoneMatch(min, max float64, op Op, cv float64) bool {
	switch op {
	case OpEq:
		return cv < min || cv > max
	case OpNeq:
		return min == max && min == cv
	case OpLt:
		return min >= cv
	case OpLe:
		return min > cv
	case OpGt:
		return max <= cv
	case OpGe:
		return max < cv
	}
	return false
}

// rangeAllMatch reports that EVERY finite value in [min, max]
// satisfies op against cv.
func rangeAllMatch(min, max float64, op Op, cv float64) bool {
	switch op {
	case OpEq:
		return min == max && min == cv
	case OpNeq:
		return cv < min || cv > max
	case OpLt:
		return max < cv
	case OpLe:
		return max <= cv
	case OpGt:
		return min > cv
	case OpGe:
		return min >= cv
	}
	return false
}

// zoneEqStringVerdict decides a string equality clause against z's
// dictionary-code presence bitmap (bit code%256). The bitmap is an
// over-approximation — a set bit proves nothing, only a CLEAR bit
// proves absence — so the only verdict it can return is zoneNone.
func zoneEqStringVerdict(z engine.ZoneInfo, eqCode int) zoneVerdict {
	if !z.HasPresence || eqCode < 0 {
		return zoneScan
	}
	bit := uint32(eqCode) & 255
	if z.Presence[bit>>6]&(1<<(bit&63)) == 0 {
		return zoneNone
	}
	return zoneScan
}

// zoneNonNullVerdict decides the non-NULL mask for one segment.
func zoneNonNullVerdict(z engine.ZoneInfo) zoneVerdict {
	if z.Rows == 0 {
		return zoneScan
	}
	if z.NullCount == 0 {
		return zoneAll
	}
	if z.NullCount == z.Rows {
		return zoneNone
	}
	return zoneScan
}

// fillRange sets bits [lo, hi) of words.
func fillRange(words []uint64, lo, hi int) {
	loWord, hiWord := lo>>6, (hi-1)>>6
	for wi := loWord; wi <= hiWord; wi++ {
		m := ^uint64(0)
		if wi == loWord {
			m &= ^uint64(0) << (uint(lo) & 63)
		}
		if wi == hiWord {
			if rem := hi - wi*64; rem < 64 {
				m &= 1<<uint(rem) - 1
			}
		}
		words[wi] |= m
	}
}

// segZone returns segment k's zone map for column ci when the segment
// is out-of-core AND the span covers the whole segment — partial spans
// must scan (the zone summarizes all rows, the span only some).
func (ix *Index) segZone(k, ci, lo, hi int) (engine.ZoneInfo, bool) {
	if lo != 0 || hi != ix.t.SegRows() {
		return engine.ZoneInfo{}, false
	}
	if !ix.t.SegmentFaultable(k) {
		return engine.ZoneInfo{}, false
	}
	return ix.t.SegmentZone(k, ci)
}
