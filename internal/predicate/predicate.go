// Package predicate defines the human-readable conjunctive predicates
// DBWipes returns as explanations (e.g. "(sensorid = 15 AND time
// BETWEEN 11am AND 1pm)" in the paper), along with evaluation against
// tables, canonicalization/simplification, deduplication, and rendering
// to SQL / expression trees so a predicate can be clicked to clean the
// database (WHERE NOT (...)).
package predicate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/expr"
)

// Op is a clause comparison operator.
type Op int

// Clause operators.
const (
	OpEq Op = iota
	OpNeq
	OpLe
	OpGe
	OpLt
	OpGt
)

// String returns the SQL spelling.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpLe:
		return "<="
	case OpGe:
		return ">="
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	default:
		return "?"
	}
}

// Clause is one atomic condition on a column.
type Clause struct {
	Col string
	Op  Op
	Val engine.Value
}

// String renders the clause as SQL.
func (c Clause) String() string {
	return fmt.Sprintf("%s %s %s", c.Col, c.Op, c.Val.SQL())
}

// Matches evaluates the clause against a value of its column. NULL never
// matches (SQL semantics). The op dispatch lives in opMatchesCmp
// (index.go) so the vectorized clause masks and this row-at-a-time path
// share one source of truth.
func (c Clause) Matches(v engine.Value) bool {
	if v.IsNull() {
		return false
	}
	cmp, err := engine.Compare(v, c.Val)
	if err != nil {
		return false
	}
	return opMatchesCmp(c.Op, cmp)
}

// Predicate is a conjunction of clauses. The zero Predicate matches
// every row ("TRUE").
type Predicate struct {
	Clauses []Clause
}

// New builds a predicate from clauses.
func New(clauses ...Clause) Predicate { return Predicate{Clauses: clauses} }

// IsTrue reports whether the predicate has no clauses.
func (p Predicate) IsTrue() bool { return len(p.Clauses) == 0 }

// Len returns the number of clauses (the paper's "complexity": number
// of terms).
func (p Predicate) Len() int { return len(p.Clauses) }

// Columns returns the distinct columns referenced, in clause order.
func (p Predicate) Columns() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range p.Clauses {
		lower := strings.ToLower(c.Col)
		if !seen[lower] {
			seen[lower] = true
			out = append(out, c.Col)
		}
	}
	return out
}

// And returns p with an extra clause appended.
func (p Predicate) And(c Clause) Predicate {
	out := Predicate{Clauses: make([]Clause, 0, len(p.Clauses)+1)}
	out.Clauses = append(out.Clauses, p.Clauses...)
	out.Clauses = append(out.Clauses, c)
	return out
}

// String renders the predicate as SQL; the TRUE predicate renders as
// "TRUE".
func (p Predicate) String() string {
	if p.IsTrue() {
		return "TRUE"
	}
	parts := make([]string, len(p.Clauses))
	for i, c := range p.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " AND ")
}

// MatchesRow evaluates the predicate against row values using resolved
// column indexes. Use Binder for repeated evaluation.
func (p Predicate) MatchesRow(t *engine.Table, row int) bool {
	for _, c := range p.Clauses {
		ci := t.Schema().ColIndex(c.Col)
		if ci < 0 || !c.Matches(t.Value(row, ci)) {
			return false
		}
	}
	return true
}

// Binder pre-resolves a predicate's columns against a table for fast
// row evaluation.
type Binder struct {
	clauses []Clause
	cols    []int
	table   *engine.Table
	valid   bool
}

// Bind resolves the predicate against t. An unknown column yields an
// invalid binder that matches nothing.
func (p Predicate) Bind(t *engine.Table) *Binder {
	b := &Binder{clauses: p.Clauses, table: t, valid: true}
	for _, c := range p.Clauses {
		ci := t.Schema().ColIndex(c.Col)
		if ci < 0 {
			b.valid = false
			break
		}
		b.cols = append(b.cols, ci)
	}
	return b
}

// Matches evaluates the bound predicate against a row.
func (b *Binder) Matches(row int) bool {
	if !b.valid {
		return false
	}
	for i, c := range b.clauses {
		if !c.Matches(b.table.Value(row, b.cols[i])) {
			return false
		}
	}
	return true
}

// MatchingRows returns the rows of t (restricted to the given subset, or
// all rows when subset is nil) satisfying the predicate.
func (p Predicate) MatchingRows(t *engine.Table, subset []int) []int {
	b := p.Bind(t)
	var out []int
	if subset == nil {
		for r := 0; r < t.NumRows(); r++ {
			if b.Matches(r) {
				out = append(out, r)
			}
		}
		return out
	}
	for _, r := range subset {
		if b.Matches(r) {
			out = append(out, r)
		}
	}
	return out
}

// ToExpr converts the predicate to an expression tree for use in WHERE
// clauses. The TRUE predicate converts to the literal true.
func (p Predicate) ToExpr() expr.Expr {
	if p.IsTrue() {
		return expr.NewLit(engine.NewBool(true))
	}
	var e expr.Expr
	for _, c := range p.Clauses {
		var op expr.BinOp
		switch c.Op {
		case OpEq:
			op = expr.OpEq
		case OpNeq:
			op = expr.OpNeq
		case OpLe:
			op = expr.OpLe
		case OpGe:
			op = expr.OpGe
		case OpLt:
			op = expr.OpLt
		case OpGt:
			op = expr.OpGt
		}
		clause := expr.NewBin(op, expr.NewCol(c.Col), expr.NewLit(c.Val))
		e = expr.And(e, clause)
	}
	return e
}

// NegationExpr returns NOT (p), the filter that *removes* the
// predicate's tuples — what clicking a predicate in the dashboard adds
// to the query.
func (p Predicate) NegationExpr() expr.Expr { return expr.NewNot(p.ToExpr()) }

// ---------------------------------------------------------------------
// Canonicalization

// Simplify canonicalizes the predicate:
//   - redundant bounds on the same column collapse (x>=3 AND x>=5 → x>=5)
//   - exact duplicates drop
//   - an equality on a column supersedes consistent range bounds on it
//   - contradictions yield (false, since an always-false explanation is
//     useless) — reported via the second return value
//
// Clauses are ordered by column name, then operator, for stable Keys.
func (p Predicate) Simplify() (Predicate, bool) {
	type bounds struct {
		eq      *engine.Value
		neqs    []engine.Value
		lo      *engine.Value // strictest lower bound
		loIncl  bool
		hi      *engine.Value // strictest upper bound
		hiIncl  bool
		colName string
	}
	byCol := map[string]*bounds{}
	var order []string
	for _, c := range p.Clauses {
		key := strings.ToLower(c.Col)
		b, ok := byCol[key]
		if !ok {
			b = &bounds{colName: c.Col}
			byCol[key] = b
			order = append(order, key)
		}
		switch c.Op {
		case OpEq:
			if b.eq != nil && !engine.Equal(*b.eq, c.Val) {
				return Predicate{}, false
			}
			v := c.Val
			b.eq = &v
		case OpNeq:
			b.neqs = append(b.neqs, c.Val)
		case OpGe, OpGt:
			incl := c.Op == OpGe
			if b.lo == nil {
				v := c.Val
				b.lo, b.loIncl = &v, incl
			} else if cmp, err := engine.Compare(c.Val, *b.lo); err == nil {
				if cmp > 0 || (cmp == 0 && !incl) {
					v := c.Val
					b.lo, b.loIncl = &v, incl
				}
			}
		case OpLe, OpLt:
			incl := c.Op == OpLe
			if b.hi == nil {
				v := c.Val
				b.hi, b.hiIncl = &v, incl
			} else if cmp, err := engine.Compare(c.Val, *b.hi); err == nil {
				if cmp < 0 || (cmp == 0 && !incl) {
					v := c.Val
					b.hi, b.hiIncl = &v, incl
				}
			}
		}
	}

	var out Predicate
	sort.Strings(order)
	for _, key := range order {
		b := byCol[key]
		if b.eq != nil {
			// Check consistency with bounds and neqs.
			if b.lo != nil {
				if cmp, err := engine.Compare(*b.eq, *b.lo); err != nil || cmp < 0 || (cmp == 0 && !b.loIncl) {
					return Predicate{}, false
				}
			}
			if b.hi != nil {
				if cmp, err := engine.Compare(*b.eq, *b.hi); err != nil || cmp > 0 || (cmp == 0 && !b.hiIncl) {
					return Predicate{}, false
				}
			}
			for _, nv := range b.neqs {
				if engine.Equal(*b.eq, nv) {
					return Predicate{}, false
				}
			}
			out.Clauses = append(out.Clauses, Clause{Col: b.colName, Op: OpEq, Val: *b.eq})
			continue
		}
		if b.lo != nil && b.hi != nil {
			cmp, err := engine.Compare(*b.lo, *b.hi)
			if err == nil && (cmp > 0 || (cmp == 0 && !(b.loIncl && b.hiIncl))) {
				return Predicate{}, false
			}
		}
		if b.lo != nil {
			op := OpGe
			if !b.loIncl {
				op = OpGt
			}
			out.Clauses = append(out.Clauses, Clause{Col: b.colName, Op: op, Val: *b.lo})
		}
		if b.hi != nil {
			op := OpLe
			if !b.hiIncl {
				op = OpLt
			}
			out.Clauses = append(out.Clauses, Clause{Col: b.colName, Op: op, Val: *b.hi})
		}
		// Keep NEQs that are not already excluded by the bounds.
		seen := map[string]bool{}
		for _, nv := range b.neqs {
			if seen[nv.Key()] {
				continue
			}
			seen[nv.Key()] = true
			excluded := false
			if b.lo != nil {
				if cmp, err := engine.Compare(nv, *b.lo); err == nil && (cmp < 0 || (cmp == 0 && !b.loIncl)) {
					excluded = true
				}
			}
			if b.hi != nil {
				if cmp, err := engine.Compare(nv, *b.hi); err == nil && (cmp > 0 || (cmp == 0 && !b.hiIncl)) {
					excluded = true
				}
			}
			if !excluded {
				out.Clauses = append(out.Clauses, Clause{Col: b.colName, Op: OpNeq, Val: nv})
			}
		}
	}
	return out, true
}

// Key returns a canonical identity string; two predicates with the same
// simplified form share a Key. Used to deduplicate candidate
// explanations across trees and subgroup rules.
func (p Predicate) Key() string {
	s, ok := p.Simplify()
	if !ok {
		return "<false>"
	}
	parts := make([]string, len(s.Clauses))
	for i, c := range s.Clauses {
		parts[i] = strings.ToLower(c.Col) + "\x1f" + c.Op.String() + "\x1f" + c.Val.Key()
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x1e")
}
