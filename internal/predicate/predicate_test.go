package predicate

import (
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/expr"
)

func sampleTable(t *testing.T) *engine.Table {
	t.Helper()
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"mote", engine.TInt, "volt", engine.TFloat, "memo", engine.TString))
	rows := []struct {
		mote int64
		volt float64
		memo string
	}{
		{1, 2.7, ""}, {2, 2.6, ""}, {15, 2.3, "BAD"}, {15, 2.2, "BAD"}, {3, 2.65, "REFUND"},
	}
	for _, r := range rows {
		tbl.MustAppendRow(engine.NewInt(r.mote), engine.NewFloat(r.volt), engine.NewString(r.memo))
	}
	return tbl
}

func TestClauseMatches(t *testing.T) {
	c := Clause{Col: "x", Op: OpLe, Val: engine.NewFloat(2.4)}
	if !c.Matches(engine.NewFloat(2.3)) || c.Matches(engine.NewFloat(2.5)) {
		t.Error("OpLe wrong")
	}
	if c.Matches(engine.Null) {
		t.Error("NULL should never match")
	}
	eq := Clause{Col: "m", Op: OpEq, Val: engine.NewString("BAD")}
	if !eq.Matches(engine.NewString("BAD")) || eq.Matches(engine.NewString("GOOD")) {
		t.Error("OpEq wrong")
	}
	neq := Clause{Col: "m", Op: OpNeq, Val: engine.NewString("BAD")}
	if neq.Matches(engine.NewString("BAD")) || !neq.Matches(engine.NewString("GOOD")) {
		t.Error("OpNeq wrong")
	}
	// Incomparable types never match.
	if eq.Matches(engine.NewInt(5)) {
		t.Error("string clause matched int")
	}
}

func TestPredicateMatchingRows(t *testing.T) {
	tbl := sampleTable(t)
	p := New(
		Clause{Col: "mote", Op: OpEq, Val: engine.NewInt(15)},
		Clause{Col: "volt", Op: OpLe, Val: engine.NewFloat(2.25)},
	)
	rows := p.MatchingRows(tbl, nil)
	if len(rows) != 1 || rows[0] != 3 {
		t.Errorf("matching: %v", rows)
	}
	subset := p.MatchingRows(tbl, []int{0, 1, 2})
	if len(subset) != 0 {
		t.Errorf("subset matching: %v", subset)
	}
}

func TestBinderUnknownColumn(t *testing.T) {
	tbl := sampleTable(t)
	p := New(Clause{Col: "nosuch", Op: OpEq, Val: engine.NewInt(1)})
	if got := p.MatchingRows(tbl, nil); len(got) != 0 {
		t.Errorf("unknown column matched: %v", got)
	}
}

func TestTruePredicate(t *testing.T) {
	tbl := sampleTable(t)
	p := Predicate{}
	if !p.IsTrue() || p.String() != "TRUE" {
		t.Error("zero predicate should be TRUE")
	}
	if got := p.MatchingRows(tbl, nil); len(got) != tbl.NumRows() {
		t.Errorf("TRUE matched %d rows", len(got))
	}
}

func TestSimplifyBounds(t *testing.T) {
	p := New(
		Clause{Col: "x", Op: OpGe, Val: engine.NewInt(3)},
		Clause{Col: "x", Op: OpGe, Val: engine.NewInt(5)},
		Clause{Col: "x", Op: OpLe, Val: engine.NewInt(10)},
	)
	s, ok := p.Simplify()
	if !ok {
		t.Fatal("contradiction reported")
	}
	if s.Len() != 2 {
		t.Fatalf("simplified: %s", s)
	}
	if s.String() != "x >= 5 AND x <= 10" {
		t.Errorf("simplified: %s", s)
	}
}

func TestSimplifyContradiction(t *testing.T) {
	p := New(
		Clause{Col: "x", Op: OpGe, Val: engine.NewInt(5)},
		Clause{Col: "x", Op: OpLe, Val: engine.NewInt(3)},
	)
	if _, ok := p.Simplify(); ok {
		t.Error("x>=5 AND x<=3 not detected as contradiction")
	}
	p2 := New(
		Clause{Col: "x", Op: OpEq, Val: engine.NewInt(5)},
		Clause{Col: "x", Op: OpEq, Val: engine.NewInt(6)},
	)
	if _, ok := p2.Simplify(); ok {
		t.Error("x=5 AND x=6 not detected")
	}
	p3 := New(
		Clause{Col: "x", Op: OpEq, Val: engine.NewInt(5)},
		Clause{Col: "x", Op: OpNeq, Val: engine.NewInt(5)},
	)
	if _, ok := p3.Simplify(); ok {
		t.Error("x=5 AND x!=5 not detected")
	}
}

func TestSimplifyEqSupersedesBounds(t *testing.T) {
	p := New(
		Clause{Col: "x", Op: OpEq, Val: engine.NewInt(5)},
		Clause{Col: "x", Op: OpGe, Val: engine.NewInt(3)},
	)
	s, ok := p.Simplify()
	if !ok || s.Len() != 1 || s.Clauses[0].Op != OpEq {
		t.Errorf("eq supersede: %s ok=%v", s, ok)
	}
}

// Property: simplification preserves semantics over random tables.
func TestSimplifyPreservesSemantics(t *testing.T) {
	tbl := sampleTable(t)
	ops := []Op{OpEq, OpNeq, OpLe, OpGe, OpLt, OpGt}
	f := func(rawOps []uint8, rawVals []int8) bool {
		n := len(rawOps)
		if n == 0 || len(rawVals) < n {
			return true
		}
		if n > 4 {
			n = 4
		}
		var p Predicate
		for i := 0; i < n; i++ {
			p = p.And(Clause{
				Col: "mote",
				Op:  ops[int(rawOps[i])%len(ops)],
				Val: engine.NewInt(int64(rawVals[i] % 20)),
			})
		}
		s, ok := p.Simplify()
		orig := p.MatchingRows(tbl, nil)
		if !ok {
			// Contradiction: original must match nothing.
			return len(orig) == 0
		}
		simp := s.MatchingRows(tbl, nil)
		if len(orig) != len(simp) {
			return false
		}
		for i := range orig {
			if orig[i] != simp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: ToExpr evaluates identically to MatchesRow.
func TestToExprEquivalence(t *testing.T) {
	tbl := sampleTable(t)
	preds := []Predicate{
		New(Clause{Col: "mote", Op: OpEq, Val: engine.NewInt(15)}),
		New(Clause{Col: "volt", Op: OpLe, Val: engine.NewFloat(2.4)},
			Clause{Col: "memo", Op: OpEq, Val: engine.NewString("BAD")}),
		New(Clause{Col: "memo", Op: OpNeq, Val: engine.NewString("")}),
		{},
	}
	for _, p := range preds {
		e := p.ToExpr()
		if err := e.Resolve(tbl.Schema()); err != nil {
			t.Fatalf("resolve %s: %v", e, err)
		}
		for r := 0; r < tbl.NumRows(); r++ {
			ok, err := expr.EvalBool(e, tbl.Row(r))
			if err != nil {
				t.Fatalf("eval: %v", err)
			}
			if ok != p.MatchesRow(tbl, r) {
				t.Errorf("pred %s row %d: expr=%v pred=%v", p, r, ok, p.MatchesRow(tbl, r))
			}
		}
	}
}

func TestNegationExpr(t *testing.T) {
	tbl := sampleTable(t)
	p := New(Clause{Col: "memo", Op: OpEq, Val: engine.NewString("BAD")})
	ne := p.NegationExpr()
	if err := ne.Resolve(tbl.Schema()); err != nil {
		t.Fatal(err)
	}
	kept := 0
	for r := 0; r < tbl.NumRows(); r++ {
		ok, _ := expr.EvalBool(ne, tbl.Row(r))
		if ok {
			kept++
		}
	}
	if kept != 3 {
		t.Errorf("negation kept %d rows, want 3", kept)
	}
}

func TestKeyDedup(t *testing.T) {
	a := New(
		Clause{Col: "x", Op: OpGe, Val: engine.NewInt(3)},
		Clause{Col: "y", Op: OpEq, Val: engine.NewString("z")},
	)
	b := New( // same clauses, different order + redundant bound
		Clause{Col: "y", Op: OpEq, Val: engine.NewString("z")},
		Clause{Col: "x", Op: OpGe, Val: engine.NewInt(2)},
		Clause{Col: "x", Op: OpGe, Val: engine.NewInt(3)},
	)
	if a.Key() != b.Key() {
		t.Errorf("keys differ:\n  %s\n  %s", a.Key(), b.Key())
	}
	c := New(Clause{Col: "x", Op: OpGe, Val: engine.NewInt(4)})
	if a.Key() == c.Key() {
		t.Error("different predicates share key")
	}
}

func TestColumns(t *testing.T) {
	p := New(
		Clause{Col: "a", Op: OpEq, Val: engine.NewInt(1)},
		Clause{Col: "b", Op: OpEq, Val: engine.NewInt(2)},
		Clause{Col: "A", Op: OpGe, Val: engine.NewInt(0)},
	)
	cols := p.Columns()
	if len(cols) != 2 {
		t.Errorf("Columns: %v", cols)
	}
}

func TestStringRendering(t *testing.T) {
	p := New(
		Clause{Col: "memo", Op: OpEq, Val: engine.NewString("REATTRIBUTION TO SPOUSE")},
		Clause{Col: "amount", Op: OpLt, Val: engine.NewFloat(0)},
	)
	// Float literals render with an explicit float marker ("0.0", not
	// "0") so predicate SQL survives a parse → print → parse round trip
	// (bare "0" re-parses as an integer literal).
	want := "memo = 'REATTRIBUTION TO SPOUSE' AND amount < 0.0"
	if p.String() != want {
		t.Errorf("String: %q", p.String())
	}
}
