package predicate

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/engine"
)

// randomTable builds a table with mixed int/float/string columns,
// NULLs, and the occasional NaN.
func randomTable(rng *rand.Rand, rows int) *engine.Table {
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"i", engine.TInt,
		"f", engine.TFloat,
		"s", engine.TString,
		"b", engine.TBool,
	))
	strs := []string{"alpha", "beta", "gamma", "delta", ""}
	for r := 0; r < rows; r++ {
		iv := engine.NewInt(int64(rng.Intn(10) - 5))
		fv := engine.NewFloat(float64(rng.Intn(20))/2 - 4)
		sv := engine.NewString(strs[rng.Intn(len(strs))])
		bv := engine.NewBool(rng.Intn(2) == 0)
		if rng.Intn(8) == 0 {
			iv = engine.Null
		}
		if rng.Intn(8) == 0 {
			fv = engine.Null
		} else if rng.Intn(16) == 0 {
			fv = engine.NewFloat(math.NaN())
		}
		if rng.Intn(8) == 0 {
			sv = engine.Null
		}
		if rng.Intn(8) == 0 {
			bv = engine.Null
		}
		tbl.MustAppendRow(iv, fv, sv, bv)
	}
	return tbl
}

// randomClause draws a clause over a random column, sometimes with a
// mismatched value type, an absent value, or a NULL literal.
func randomClause(rng *rand.Rand) Clause {
	cols := []string{"i", "f", "s", "b", "missing"}
	col := cols[rng.Intn(len(cols))]
	op := Op(rng.Intn(6))
	var val engine.Value
	switch rng.Intn(10) {
	case 0:
		val = engine.Null
	case 1:
		val = engine.NewString([]string{"alpha", "beta", "nowhere", ""}[rng.Intn(4)])
	case 2:
		val = engine.NewBool(rng.Intn(2) == 0)
	case 3, 4:
		val = engine.NewInt(int64(rng.Intn(10) - 5))
	default:
		val = engine.NewFloat(float64(rng.Intn(20))/2 - 4)
	}
	return Clause{Col: col, Op: op, Val: val}
}

// TestMatchingBitsetParity is the scalar/vector property test: over
// random tables, subsets and predicates, the vectorized MatchingBitset
// must return exactly the rows MatchingRows returns.
func TestMatchingBitsetParity(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	for trial := 0; trial < 300; trial++ {
		rows := 1 + rng.Intn(200)
		tbl := randomTable(rng, rows)
		ix := NewIndex(tbl)
		for p := 0; p < 10; p++ {
			var pred Predicate
			for nc := rng.Intn(4); nc > 0; nc-- {
				pred.Clauses = append(pred.Clauses, randomClause(rng))
			}

			var subset []int
			var subsetBits *bitset.Bitset
			if rng.Intn(2) == 0 {
				subsetBits = bitset.New(rows)
				for r := 0; r < rows; r++ {
					if rng.Intn(3) == 0 {
						subset = append(subset, r)
						subsetBits.Set(r)
					}
				}
				if subset == nil {
					subset = []int{}
				}
			}

			want := pred.MatchingRows(tbl, subset)
			got := pred.MatchingBitset(ix, subsetBits).Rows()
			if subset == nil && subsetBits == nil {
				// both mean "all rows"
			}
			if !equalRows(want, got) {
				t.Fatalf("trial %d pred %q subset=%v:\n scalar: %v\n vector: %v",
					trial, pred, subset, want, got)
			}
		}
	}
}

// TestMatchingBitsetTruePredicate checks the TRUE predicate matches the
// whole subset on both paths.
func TestMatchingBitsetTruePredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := randomTable(rng, 50)
	ix := NewIndex(tbl)
	var pred Predicate
	if got := pred.MatchingBitset(ix, nil).Count(); got != 50 {
		t.Fatalf("TRUE matched %d of 50", got)
	}
	sub := bitset.FromRows(50, []int{3, 7, 11})
	if got := pred.MatchingBitset(ix, sub).Rows(); !equalRows(got, []int{3, 7, 11}) {
		t.Fatalf("TRUE over subset = %v", got)
	}
}

func equalRows(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkMatchingRowsScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl := randomTable(rng, 100_000)
	pred := New(
		Clause{Col: "f", Op: OpGe, Val: engine.NewFloat(-1)},
		Clause{Col: "s", Op: OpEq, Val: engine.NewString("alpha")},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.MatchingRows(tbl, nil)
	}
}

func BenchmarkMatchingBitsetVector(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl := randomTable(rng, 100_000)
	ix := NewIndex(tbl)
	pred := New(
		Clause{Col: "f", Op: OpGe, Val: engine.NewFloat(-1)},
		Clause{Col: "s", Op: OpEq, Val: engine.NewString("alpha")},
	)
	dst := bitset.New(tbl.NumRows())
	ix.MatchInto(pred, nil, dst) // warm the clause cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.MatchInto(pred, nil, dst)
	}
}

func ExamplePredicate_MatchingBitset() {
	tbl := engine.MustNewTable("t", engine.NewSchema("x", engine.TInt))
	for i := 0; i < 6; i++ {
		tbl.MustAppendRow(engine.NewInt(int64(i)))
	}
	ix := NewIndex(tbl)
	p := New(Clause{Col: "x", Op: OpGe, Val: engine.NewInt(4)})
	fmt.Println(p.MatchingBitset(ix, nil).Rows())
	// Output: [4 5]
}

// TestIndexAfterAppend: clause masks cached before rows were appended
// must rebuild instead of panicking on a bitset length mismatch.
func TestIndexAfterAppend(t *testing.T) {
	tbl := engine.MustNewTable("t", engine.NewSchema("x", engine.TInt))
	for i := 0; i < 5; i++ {
		tbl.MustAppendRow(engine.NewInt(int64(i)))
	}
	ix := NewIndex(tbl)
	p := New(Clause{Col: "x", Op: OpGe, Val: engine.NewInt(3)})
	if got := p.MatchingBitset(ix, nil).Rows(); !equalRows(got, []int{3, 4}) {
		t.Fatalf("before append: %v", got)
	}
	tbl.MustAppendRow(engine.NewInt(9))
	if got := p.MatchingBitset(ix, nil).Rows(); !equalRows(got, []int{3, 4, 5}) {
		t.Fatalf("after append: %v", got)
	}
}

// TestIndexExtendsOnAppend pins the incremental clause-mask
// maintenance: after rows are appended, cached masks extend by decoding
// only the suffix (the canonical entry survives), snapshots at the old
// length stay valid, and match results stay parity-exact with the
// scalar evaluator.
func TestIndexExtendsOnAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := randomTable(rng, 150)
	ix := NewIndex(tbl)

	clauses := []Clause{
		{Col: "f", Op: OpGt, Val: engine.NewFloat(0)},
		{Col: "s", Op: OpEq, Val: engine.NewString("beta")},
		{Col: "i", Op: OpLe, Val: engine.NewInt(2)},
	}
	old := make([]*bitset.Bitset, len(clauses))
	entries := make([]*maskEntry, len(clauses))
	for k, c := range clauses {
		old[k] = ix.ClauseBits(c)
		entries[k] = ix.clauses[c]
		if entries[k].built(tbl.SegRows()) != 150 {
			t.Fatalf("clause %d built = %d", k, entries[k].built(tbl.SegRows()))
		}
	}
	oldNonNull := ix.NonNullBits(1)

	// Grow the table in place (the single-owner form) by 60 rows.
	grown := randomTable(rng, 60)
	for r := 0; r < grown.NumRows(); r++ {
		if _, err := tbl.AppendRow(grown.Row(r)); err != nil {
			t.Fatal(err)
		}
	}

	for k, c := range clauses {
		nb := ix.ClauseBits(c)
		if ix.clauses[c] != entries[k] {
			t.Fatalf("clause %d: canonical entry rebuilt instead of extended", k)
		}
		if entries[k].built(tbl.SegRows()) != 210 || nb.Len() != 210 {
			t.Fatalf("clause %d: built=%d len=%d", k, entries[k].built(tbl.SegRows()), nb.Len())
		}
		// Parity with the scalar evaluator over the grown table.
		ci := tbl.Schema().ColIndex(c.Col)
		for r := 0; r < tbl.NumRows(); r++ {
			if nb.Get(r) != c.Matches(tbl.Value(r, ci)) {
				t.Fatalf("clause %d row %d: mask=%v scalar=%v", k, r, nb.Get(r), !nb.Get(r))
			}
		}
		// Old snapshots keep their length and bits.
		if old[k].Len() != 150 {
			t.Fatalf("clause %d: old snapshot grew", k)
		}
		for r := 0; r < 150; r++ {
			if old[k].Get(r) != nb.Get(r) {
				t.Fatalf("clause %d row %d: prefix bit changed", k, r)
			}
		}
		// Length-stamped requests at the old version still work.
		if s := ix.ClauseBitsAt(c, 150); s.Len() != 150 || s.Count() != old[k].Count() {
			t.Fatalf("clause %d: ClauseBitsAt(150) = len %d count %d", k, s.Len(), s.Count())
		}
	}
	if nn := ix.NonNullBits(1); nn.Len() != 210 || oldNonNull.Len() != 150 {
		t.Fatalf("non-NULL masks: new %d old %d", nn.Len(), oldNonNull.Len())
	}
}

// TestIndexSyncRows checks the copy-on-write form: the index follows
// the table family to the newest version through SyncRows (the
// engine.RowSynced hook) and serves masks at the grown length.
func TestIndexSyncRows(t *testing.T) {
	tbl := engine.MustNewTable("t", engine.NewSchema("x", engine.TFloat))
	for i := 0; i < 30; i++ {
		tbl.MustAppendRow(engine.NewFloat(float64(i)))
	}
	ix := NewIndex(tbl)
	c := Clause{Col: "x", Op: OpGe, Val: engine.NewFloat(10)}
	if got := ix.ClauseBits(c).Count(); got != 20 {
		t.Fatalf("initial count = %d", got)
	}
	nt, err := tbl.AppendBatch([][]engine.Value{{engine.NewFloat(50)}, {engine.NewFloat(-1)}})
	if err != nil {
		t.Fatal(err)
	}
	ix.SyncRows(nt)
	if ix.Table() != nt {
		t.Fatal("SyncRows did not rebase onto the newer version")
	}
	b := ix.ClauseBits(c)
	if b.Len() != 32 || b.Count() != 21 {
		t.Fatalf("after sync: len=%d count=%d", b.Len(), b.Count())
	}
	// Syncing to an older version is a no-op.
	ix.SyncRows(tbl)
	if ix.Table() != nt {
		t.Fatal("SyncRows regressed to an older version")
	}
}
