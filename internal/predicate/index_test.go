package predicate

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/engine"
)

// randomTable builds a table with mixed int/float/string columns,
// NULLs, and the occasional NaN.
func randomTable(rng *rand.Rand, rows int) *engine.Table {
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"i", engine.TInt,
		"f", engine.TFloat,
		"s", engine.TString,
		"b", engine.TBool,
	))
	strs := []string{"alpha", "beta", "gamma", "delta", ""}
	for r := 0; r < rows; r++ {
		iv := engine.NewInt(int64(rng.Intn(10) - 5))
		fv := engine.NewFloat(float64(rng.Intn(20))/2 - 4)
		sv := engine.NewString(strs[rng.Intn(len(strs))])
		bv := engine.NewBool(rng.Intn(2) == 0)
		if rng.Intn(8) == 0 {
			iv = engine.Null
		}
		if rng.Intn(8) == 0 {
			fv = engine.Null
		} else if rng.Intn(16) == 0 {
			fv = engine.NewFloat(math.NaN())
		}
		if rng.Intn(8) == 0 {
			sv = engine.Null
		}
		if rng.Intn(8) == 0 {
			bv = engine.Null
		}
		tbl.MustAppendRow(iv, fv, sv, bv)
	}
	return tbl
}

// randomClause draws a clause over a random column, sometimes with a
// mismatched value type, an absent value, or a NULL literal.
func randomClause(rng *rand.Rand) Clause {
	cols := []string{"i", "f", "s", "b", "missing"}
	col := cols[rng.Intn(len(cols))]
	op := Op(rng.Intn(6))
	var val engine.Value
	switch rng.Intn(10) {
	case 0:
		val = engine.Null
	case 1:
		val = engine.NewString([]string{"alpha", "beta", "nowhere", ""}[rng.Intn(4)])
	case 2:
		val = engine.NewBool(rng.Intn(2) == 0)
	case 3, 4:
		val = engine.NewInt(int64(rng.Intn(10) - 5))
	default:
		val = engine.NewFloat(float64(rng.Intn(20))/2 - 4)
	}
	return Clause{Col: col, Op: op, Val: val}
}

// TestMatchingBitsetParity is the scalar/vector property test: over
// random tables, subsets and predicates, the vectorized MatchingBitset
// must return exactly the rows MatchingRows returns.
func TestMatchingBitsetParity(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	for trial := 0; trial < 300; trial++ {
		rows := 1 + rng.Intn(200)
		tbl := randomTable(rng, rows)
		ix := NewIndex(tbl)
		for p := 0; p < 10; p++ {
			var pred Predicate
			for nc := rng.Intn(4); nc > 0; nc-- {
				pred.Clauses = append(pred.Clauses, randomClause(rng))
			}

			var subset []int
			var subsetBits *bitset.Bitset
			if rng.Intn(2) == 0 {
				subsetBits = bitset.New(rows)
				for r := 0; r < rows; r++ {
					if rng.Intn(3) == 0 {
						subset = append(subset, r)
						subsetBits.Set(r)
					}
				}
				if subset == nil {
					subset = []int{}
				}
			}

			want := pred.MatchingRows(tbl, subset)
			got := pred.MatchingBitset(ix, subsetBits).Rows()
			if subset == nil && subsetBits == nil {
				// both mean "all rows"
			}
			if !equalRows(want, got) {
				t.Fatalf("trial %d pred %q subset=%v:\n scalar: %v\n vector: %v",
					trial, pred, subset, want, got)
			}
		}
	}
}

// TestMatchingBitsetTruePredicate checks the TRUE predicate matches the
// whole subset on both paths.
func TestMatchingBitsetTruePredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := randomTable(rng, 50)
	ix := NewIndex(tbl)
	var pred Predicate
	if got := pred.MatchingBitset(ix, nil).Count(); got != 50 {
		t.Fatalf("TRUE matched %d of 50", got)
	}
	sub := bitset.FromRows(50, []int{3, 7, 11})
	if got := pred.MatchingBitset(ix, sub).Rows(); !equalRows(got, []int{3, 7, 11}) {
		t.Fatalf("TRUE over subset = %v", got)
	}
}

func equalRows(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkMatchingRowsScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl := randomTable(rng, 100_000)
	pred := New(
		Clause{Col: "f", Op: OpGe, Val: engine.NewFloat(-1)},
		Clause{Col: "s", Op: OpEq, Val: engine.NewString("alpha")},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.MatchingRows(tbl, nil)
	}
}

func BenchmarkMatchingBitsetVector(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl := randomTable(rng, 100_000)
	ix := NewIndex(tbl)
	pred := New(
		Clause{Col: "f", Op: OpGe, Val: engine.NewFloat(-1)},
		Clause{Col: "s", Op: OpEq, Val: engine.NewString("alpha")},
	)
	dst := bitset.New(tbl.NumRows())
	ix.MatchInto(pred, nil, dst) // warm the clause cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.MatchInto(pred, nil, dst)
	}
}

func ExamplePredicate_MatchingBitset() {
	tbl := engine.MustNewTable("t", engine.NewSchema("x", engine.TInt))
	for i := 0; i < 6; i++ {
		tbl.MustAppendRow(engine.NewInt(int64(i)))
	}
	ix := NewIndex(tbl)
	p := New(Clause{Col: "x", Op: OpGe, Val: engine.NewInt(4)})
	fmt.Println(p.MatchingBitset(ix, nil).Rows())
	// Output: [4 5]
}

// TestIndexAfterAppend: clause masks cached before rows were appended
// must rebuild instead of panicking on a bitset length mismatch.
func TestIndexAfterAppend(t *testing.T) {
	tbl := engine.MustNewTable("t", engine.NewSchema("x", engine.TInt))
	for i := 0; i < 5; i++ {
		tbl.MustAppendRow(engine.NewInt(int64(i)))
	}
	ix := NewIndex(tbl)
	p := New(Clause{Col: "x", Op: OpGe, Val: engine.NewInt(3)})
	if got := p.MatchingBitset(ix, nil).Rows(); !equalRows(got, []int{3, 4}) {
		t.Fatalf("before append: %v", got)
	}
	tbl.MustAppendRow(engine.NewInt(9))
	if got := p.MatchingBitset(ix, nil).Rows(); !equalRows(got, []int{3, 4, 5}) {
		t.Fatalf("after append: %v", got)
	}
}
