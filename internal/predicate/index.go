package predicate

import (
	"math"
	"strings"
	"sync"

	"repro/internal/bitset"
	"repro/internal/engine"
)

// Index evaluates predicates against one table column-at-a-time. Each
// clause is evaluated once over the whole table into a bitset mask and
// cached; a predicate match is then just the AND of its clause masks
// (and an optional subset mask). Candidate predicates share clauses
// heavily — tree paths reuse the same attribute thresholds, and the
// ranker's pruning re-scores one-clause-removed variants — so the cache
// hit rate is high and steady-state matching allocates nothing.
//
// Masks are stored the way the engine stores rows: as per-segment word
// arrays, each extended independently from the matching column-view
// chunk. Appends extend only the tail segment's chunk (suffix decode,
// prefix bits immutable); retention rebases the index by dropping
// whole head chunks — no mask is ever rebuilt or shifted, because
// segment boundaries are bitset-word-aligned (engine.MinSegmentBits).
// Callers receive immutable flat snapshots stamped by concatenating
// the chunk words (bitset.ConcatWords), at exactly the requested
// length, so queries running against an older same-base table version
// keep masks of their length even while newer versions extend the
// canonical chunks.
//
// Evaluation semantics are bit-for-bit identical to MatchesRow: NULL
// never matches, comparisons follow engine.Compare (numeric coercion
// across int/float/bool/time, string ordering for strings, incomparable
// types never match, NULL clause values compare below everything, NaN
// compares equal to everything).
type Index struct {
	mu sync.RWMutex
	// t is the newest table version the index has been synced to; suffix
	// decodes read from it (its rows cover every requested length at the
	// current base).
	t *engine.Table
	// clauses caches canonical match masks keyed by the clause value
	// itself (Clause is comparable), so cache hits allocate nothing.
	clauses map[Clause]*maskEntry
	// nonNull caches the non-NULL row mask per column index — the
	// complement half the executor's 3VL filter lowering needs to turn
	// "comparison is FALSE" into a mask.
	nonNull map[int]*maskEntry
}

// maskEntry is one mask's canonical chunked state: chunks[k] covers the
// current window's segment k, all chunks before the last fully built.
type maskEntry struct {
	chunks []*maskChunk
	snap   *bitset.Bitset
	// snapCount caches snap's popcount (valid iff snapCounted). It is
	// the selectivity estimate the executor's greedy clause ordering
	// reads, cached per (base, length) stamp: any extension or rebase
	// clears snap, and re-stamping a snap resets the count with it.
	snapCount   int
	snapCounted bool
}

// countSnap returns the cached popcount of b when b is the entry's
// current snap, computing and caching it on first request. Caller
// holds ix.mu (write).
func (e *maskEntry) countSnap(b *bitset.Bitset) int {
	if e.snap != b {
		return b.Count()
	}
	if !e.snapCounted {
		e.snapCount = b.Count()
		e.snapCounted = true
	}
	return e.snapCount
}

// maskChunk is one segment's worth of mask words.
type maskChunk struct {
	words []uint64
	built int // rows decoded within this segment
}

// built returns the contiguous row count the entry covers.
func (e *maskEntry) built(segRows int) int {
	if len(e.chunks) == 0 {
		return 0
	}
	return (len(e.chunks)-1)*segRows + e.chunks[len(e.chunks)-1].built
}

// NewIndex returns an index over t.
func NewIndex(t *engine.Table) *Index {
	return &Index{
		t:       t,
		clauses: make(map[Clause]*maskEntry),
		nonNull: make(map[int]*maskEntry),
	}
}

// sharedIndexKey keys the table family's shared index in the engine's
// aux cache.
type sharedIndexKey struct{}

// Shared returns the table family's shared index, creating it on first
// request through the engine's aux cache. The index implements
// engine.RowSynced, so requesting it through a grown copy-on-write
// version rebases it: cached clause masks then extend by decoding only
// the appended suffix (or drop whole head chunks after retention).
//
// The shared index lives as long as the table family and never evicts,
// so it is only for BOUNDED clause vocabularies — statement-driven
// WHERE clauses (the executor's filter lowering). Analysis passes whose
// clause thresholds are data-dependent and churn per run (the ranker's
// candidate scoring) must own a NewIndex scoped to their own lifetime
// instead, or every Debug pass would permanently grow this cache.
func Shared(t *engine.Table) *Index {
	return t.AuxLoadOrStore(sharedIndexKey{}, func() any {
		return NewIndex(t)
	}).(*Index)
}

// NumClauses reports how many clause masks the index currently caches
// (capacity accounting for carried indexes).
func (ix *Index) NumClauses() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.clauses)
}

// Table returns the newest indexed table version.
func (ix *Index) Table() *engine.Table {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.t
}

// SyncRows implements engine.RowSynced: it rebases the index onto t
// when t is a newer version of the indexed table family — longer, or
// equal-length with a larger retention base. Appends extend cached
// masks lazily on their next request; retention drops whole head
// chunks eagerly (the dropped words are exactly the dropped segments).
func (ix *Index) SyncRows(t *engine.Table) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	newer := t.Version() > ix.t.Version() ||
		(t.Version() == ix.t.Version() && t.Base() > ix.t.Base())
	if !newer {
		return
	}
	dropSegs := (t.Base() - ix.t.Base()) >> t.SegmentBits()
	ix.t = t
	if dropSegs <= 0 {
		return
	}
	for _, e := range ix.clauses {
		e.dropHead(dropSegs)
	}
	for _, e := range ix.nonNull {
		e.dropHead(dropSegs)
	}
}

func (e *maskEntry) dropHead(segs int) {
	if segs >= len(e.chunks) {
		e.chunks = nil
	} else {
		e.chunks = e.chunks[segs:]
	}
	e.snap = nil
}

// ClauseBits returns the match mask of one clause at the newest synced
// length. The returned bitset is shared and read-only.
func (ix *Index) ClauseBits(c Clause) *bitset.Bitset {
	return ix.ClauseBitsAt(c, ix.Table().NumRows())
}

// ClauseBitsAt returns the match mask of one clause over the first n
// rows of the current base window — the form queries use so a statement
// executing against an older same-base table version gets masks of
// exactly its length, even while newer versions have already extended
// the canonical bits. The returned bitset is shared and read-only.
func (ix *Index) ClauseBitsAt(c Clause, n int) *bitset.Bitset {
	b, _ := ix.ClauseBitsAtBase(c, -1, n)
	return b
}

// ClauseBitsAtBase is ClauseBitsAt with a base check: it returns
// ok=false (and a nil mask) when base >= 0 and the index's window does
// not start at base — the caller's table version predates a retention
// pass and the head chunks its mask would need are gone. Callers then
// fall back to per-row evaluation.
func (ix *Index) ClauseBitsAtBase(c Clause, base, n int) (*bitset.Bitset, bool) {
	if c.Val.T == engine.TFloat && math.IsNaN(c.Val.F) {
		// NaN keys never hit a map; build uncached rather than leak an
		// entry per call.
		e := &maskEntry{}
		ix.mu.Lock()
		defer ix.mu.Unlock()
		if base >= 0 && ix.t.Base() != base {
			return nil, false
		}
		ix.extendClause(e, c, n)
		return e.stamp(n, ix.t), true
	}
	ix.mu.RLock()
	if base >= 0 && ix.t.Base() != base {
		ix.mu.RUnlock()
		return nil, false
	}
	e, ok := ix.clauses[c]
	if ok && e.built(ix.t.SegRows()) >= n {
		if s := e.snap; s != nil && s.Len() == n {
			ix.mu.RUnlock()
			return s, true
		}
	}
	ix.mu.RUnlock()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if base >= 0 && ix.t.Base() != base {
		return nil, false
	}
	e, ok = ix.clauses[c]
	if !ok {
		e = &maskEntry{}
		ix.clauses[c] = e
	}
	ix.extendClause(e, c, n)
	return e.snapshot(n, ix.t), true
}

// ClauseCountAtBase returns the popcount of clause c's match mask over
// the first n rows at base — the statistics-free selectivity estimate
// the executor's greedy clause ordering sorts by. The count is cached
// alongside the mask's (base, length) snapshot stamp, so steady-state
// calls cost a map probe; any mask extension or retention rebase
// invalidates it with the stamp. ok is false under the same
// base-superseded condition as ClauseBitsAtBase.
func (ix *Index) ClauseCountAtBase(c Clause, base, n int) (int, bool) {
	b, ok := ix.ClauseBitsAtBase(c, base, n)
	if !ok {
		return 0, false
	}
	if c.Val.T == engine.TFloat && math.IsNaN(c.Val.F) {
		return b.Count(), true // NaN clauses are built uncached; count likewise
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if e, ok := ix.clauses[c]; ok {
		return e.countSnap(b), true
	}
	return b.Count(), true
}

// NonNullCountAtBase is ClauseCountAtBase for a column's non-NULL mask.
func (ix *Index) NonNullCountAtBase(ci, base, n int) (int, bool) {
	b, ok := ix.NonNullBitsAtBase(ci, base, n)
	if !ok {
		return 0, false
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if e, ok := ix.nonNull[ci]; ok {
		return e.countSnap(b), true
	}
	return b.Count(), true
}

// NonNullBits returns the mask of rows where column ci is not NULL at
// the newest synced length (empty for out-of-range columns). The
// returned bitset is shared and read-only.
func (ix *Index) NonNullBits(ci int) *bitset.Bitset {
	return ix.NonNullBitsAt(ci, ix.Table().NumRows())
}

// NonNullBitsAt is NonNullBits over the first n rows; see ClauseBitsAt.
func (ix *Index) NonNullBitsAt(ci int, n int) *bitset.Bitset {
	b, _ := ix.NonNullBitsAtBase(ci, -1, n)
	return b
}

// NonNullBitsAtBase is NonNullBitsAt with the same base check as
// ClauseBitsAtBase.
func (ix *Index) NonNullBitsAtBase(ci, base, n int) (*bitset.Bitset, bool) {
	ix.mu.RLock()
	if base >= 0 && ix.t.Base() != base {
		ix.mu.RUnlock()
		return nil, false
	}
	e, ok := ix.nonNull[ci]
	if ok && e.built(ix.t.SegRows()) >= n {
		if s := e.snap; s != nil && s.Len() == n {
			ix.mu.RUnlock()
			return s, true
		}
	}
	ix.mu.RUnlock()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if base >= 0 && ix.t.Base() != base {
		return nil, false
	}
	e, ok = ix.nonNull[ci]
	if !ok {
		e = &maskEntry{}
		ix.nonNull[ci] = e
	}
	if ci >= 0 && ci < len(ix.t.Schema()) {
		ix.extendNonNull(e, ci, n)
	}
	return e.snapshot(n, ix.t), true
}

// snapshot stamps an immutable length-n bitset by concatenating the
// chunk words: the newest length is cached, older lengths (in-flight
// queries against a superseded same-base version) are copied on
// demand. The copy is n/64 words — bits below the built frontier never
// change, so the chunk memcpys plus a ghost-bit trim are all a shorter
// view needs.
func (e *maskEntry) snapshot(n int, t *engine.Table) *bitset.Bitset {
	if s := e.snap; s != nil && s.Len() == n {
		return s
	}
	b := e.stamp(n, t)
	if n == e.built(t.SegRows()) {
		e.snap = b
		e.snapCounted = false
	}
	return b
}

func (e *maskEntry) stamp(n int, t *engine.Table) *bitset.Bitset {
	segWords := t.SegRows() >> 6
	blocks := make([][]uint64, len(e.chunks))
	for i, ch := range e.chunks {
		blocks[i] = ch.words
	}
	return bitset.ConcatWords(n, segWords, blocks)
}

// opMatchesCmp reports whether comparison outcome cmp satisfies op —
// the single op dispatch shared by Clause.Matches and the vectorized
// clause-mask builders.
func opMatchesCmp(op Op, cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNeq:
		return cmp != 0
	case OpLe:
		return cmp <= 0
	case OpGe:
		return cmp >= 0
	case OpLt:
		return cmp < 0
	case OpGt:
		return cmp > 0
	}
	return false
}

// forEachSegSpan walks the per-segment row spans the entry must decode
// to cover n rows: for each segment k it hands the chunk plus the
// [lo, hi) row range (segment-local) still missing. Chunks are
// allocated as needed. Caller holds ix.mu.
func (ix *Index) forEachSegSpan(e *maskEntry, n int, fn func(k int, ch *maskChunk, lo, hi int)) {
	segRows := ix.t.SegRows()
	segWords := segRows >> 6
	for start := 0; start < n; start += segRows {
		k := start / segRows
		hi := n - start
		if hi > segRows {
			hi = segRows
		}
		for len(e.chunks) <= k {
			e.chunks = append(e.chunks, &maskChunk{words: make([]uint64, segWords)})
		}
		ch := e.chunks[k]
		if ch.built >= hi {
			continue
		}
		fn(k, ch, ch.built, hi)
		ch.built = hi
		e.snap = nil
	}
}

// extendClause decodes the missing rows of clause c's mask up to n.
// Caller holds ix.mu.
func (ix *Index) extendClause(e *maskEntry, c Clause, n int) {
	ci := ix.t.Schema().ColIndex(c.Col)
	if ci < 0 {
		// Unknown column matches nothing, but the chunks must still
		// cover n so built() reflects the decoded length.
		ix.forEachSegSpan(e, n, func(int, *maskChunk, int, int) {})
		return
	}
	colType := ix.t.Schema()[ci].Type

	// NULL clause value: engine.Compare places NULL below every non-NULL
	// value, so every non-NULL row compares as +1.
	if c.Val.IsNull() {
		if opMatchesCmp(c.Op, 1) {
			ix.extendNonNull(e, ci, n)
		} else {
			ix.forEachSegSpan(e, n, func(int, *maskChunk, int, int) {})
		}
		return
	}

	switch {
	case colType.IsNumeric() && c.Val.T.IsNumeric():
		ix.extendNumeric(e, ci, c, n)
	case colType == engine.TString && c.Val.T == engine.TString:
		ix.extendString(e, ci, c, n)
	default:
		// Incomparable column/value types: engine.Compare errors, the
		// clause matches nothing.
		ix.forEachSegSpan(e, n, func(int, *maskChunk, int, int) {})
	}
}

// extendNonNull sets every missing non-NULL row of column ci up to n.
// Out-of-core segments answer from their zone maps when the NULL count
// is decisive, and otherwise scan under a pin.
func (ix *Index) extendNonNull(e *maskEntry, ci, n int) {
	if fv := ix.t.FloatView(ci); fv != nil {
		ix.forEachSegSpan(e, n, func(k int, ch *maskChunk, lo, hi int) {
			if z, ok := ix.segZone(k, ci, lo, hi); ok {
				switch zoneNonNullVerdict(z) {
				case zoneNone:
					return
				case zoneAll:
					fillRange(ch.words, lo, hi)
					return
				}
			}
			// Word-level Fill+AndNot over the segment span: ~64x fewer
			// operations than per-bit sets on a full-segment build.
			_, null, release, _ := fv.PinSeg(k)
			orRangeAndNot(ch.words, lo, hi, null)
			release()
		})
		return
	}
	if dv := ix.t.DictView(ci); dv != nil {
		ix.forEachSegSpan(e, n, func(k int, ch *maskChunk, lo, hi int) {
			if z, ok := ix.segZone(k, ci, lo, hi); ok {
				switch zoneNonNullVerdict(z) {
				case zoneNone:
					return
				case zoneAll:
					fillRange(ch.words, lo, hi)
					return
				}
			}
			codes, release, _ := dv.PinSeg(k)
			for i := lo; i < hi; i++ {
				if codes[i] >= 0 {
					ch.words[i>>6] |= 1 << (uint(i) & 63)
				}
			}
			release()
		})
		return
	}
	segRows := ix.t.SegRows()
	ix.forEachSegSpan(e, n, func(k int, ch *maskChunk, lo, hi int) {
		for i := lo; i < hi; i++ {
			if !ix.t.Value(k*segRows+i, ci).IsNull() {
				ch.words[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	})
}

// orRangeAndNot sets bits [lo, hi) of words to the complement of not's
// corresponding bits, word-at-a-time.
func orRangeAndNot(words []uint64, lo, hi int, not []uint64) {
	loWord, hiWord := lo>>6, (hi-1)>>6
	for wi := loWord; wi <= hiWord; wi++ {
		m := ^uint64(0)
		if wi == loWord {
			m &= ^uint64(0) << (uint(lo) & 63)
		}
		if wi == hiWord {
			if rem := hi - wi*64; rem < 64 {
				m &= 1<<uint(rem) - 1
			}
		}
		words[wi] |= m &^ not[wi]
	}
}

// extendNumeric evaluates a numeric clause against the missing rows of
// the float view. The comparisons are written so NaN values yield
// cmp==0 (both f<cv and f>cv false), matching engine.Compare's behavior
// exactly.
func (ix *Index) extendNumeric(e *maskEntry, ci int, c Clause, n int) {
	fv := ix.t.FloatView(ci)
	cv := c.Val.Float()
	var match func(f float64) bool
	switch c.Op {
	case OpEq:
		match = func(f float64) bool { return !(f < cv) && !(f > cv) }
	case OpNeq:
		match = func(f float64) bool { return f < cv || f > cv }
	case OpLe:
		match = func(f float64) bool { return !(f > cv) }
	case OpGe:
		match = func(f float64) bool { return !(f < cv) }
	case OpLt:
		match = func(f float64) bool { return f < cv }
	case OpGt:
		match = func(f float64) bool { return f > cv }
	default:
		return
	}
	ix.forEachSegSpan(e, n, func(k int, ch *maskChunk, lo, hi int) {
		if z, ok := ix.segZone(k, ci, lo, hi); ok {
			switch zoneNumericVerdict(z, c.Op, cv) {
			case zoneNone:
				return // provably no match: chunk stays zero, no fault
			case zoneAll:
				// Every row (incl. NaN, excl. none — NullCount is 0)
				// matches: fill without faulting.
				fillRange(ch.words, lo, hi)
				return
			}
		}
		vals, null, release, _ := fv.PinSeg(k)
		for i := lo; i < hi; i++ {
			if match(vals[i]) && null[i>>6]&(1<<(uint(i)&63)) == 0 {
				ch.words[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		release()
	})
}

// extendString evaluates a string clause against the missing rows of
// the dictionary view: the comparison runs once per distinct value,
// then fans out by code.
func (ix *Index) extendString(e *maskEntry, ci int, c Clause, n int) {
	dv := ix.t.DictView(ci)
	if dv == nil {
		ix.forEachSegSpan(e, n, func(int, *maskChunk, int, int) {})
		return
	}
	verdict := make([]bool, len(dv.Values()))
	eqCode := -1 // the single matching code for OpEq (dict values are distinct)
	for code, s := range dv.Values() {
		verdict[code] = opMatchesCmp(c.Op, strings.Compare(s, c.Val.S))
		if verdict[code] && c.Op == OpEq {
			eqCode = code
		}
	}
	ix.forEachSegSpan(e, n, func(k int, ch *maskChunk, lo, hi int) {
		if c.Op == OpEq {
			if z, ok := ix.segZone(k, ci, lo, hi); ok && zoneEqStringVerdict(z, eqCode) == zoneNone {
				return // code provably absent from the segment: no fault
			}
		}
		codes, release, _ := dv.PinSeg(k)
		for i := lo; i < hi; i++ {
			if code := codes[i]; code >= 0 && verdict[code] {
				ch.words[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		release()
	})
}

// MatchInto writes the rows matching p (within subset, or the whole
// table when subset is nil) into dst and returns it. dst's length picks
// the table version: every clause mask is stamped to it. The TRUE
// predicate matches everything in subset.
func (ix *Index) MatchInto(p Predicate, subset *bitset.Bitset, dst *bitset.Bitset) *bitset.Bitset {
	if subset != nil {
		dst.CopyFrom(subset)
	} else {
		dst.Fill()
	}
	for _, c := range p.Clauses {
		dst.And(ix.ClauseBitsAt(c, dst.Len()))
	}
	return dst
}

// MatchingBitset returns the rows of the indexed table satisfying p
// (restricted to subset when non-nil) as a fresh bitset — the vectorized
// counterpart of Predicate.MatchingRows.
func (p Predicate) MatchingBitset(ix *Index, subset *bitset.Bitset) *bitset.Bitset {
	return ix.MatchInto(p, subset, bitset.New(ix.Table().NumRows()))
}
