package predicate

import (
	"math"
	"strings"
	"sync"

	"repro/internal/bitset"
	"repro/internal/engine"
)

// Index evaluates predicates against one table column-at-a-time. Each
// clause is evaluated once over the whole table into a bitset mask and
// cached; a predicate match is then just the AND of its clause masks
// (and an optional subset mask). Candidate predicates share clauses
// heavily — tree paths reuse the same attribute thresholds, and the
// ranker's pruning re-scores one-clause-removed variants — so the cache
// hit rate is high and steady-state matching allocates nothing.
//
// The index is maintained *incrementally* across appends: each cached
// mask keeps a canonical growable word array plus the row count it
// covers. When the table grows (in place via AppendRow, or as a
// copy-on-write version via AppendBatch — the index tracks the newest
// version through engine.Table's RowSynced aux hook), only the appended
// suffix [built, n) is decoded into the existing words; prefix bits are
// immutable. Callers receive immutable per-length snapshots, so queries
// running against an older table version keep masks of exactly their
// length even while newer versions extend the canonical state.
//
// Evaluation semantics are bit-for-bit identical to MatchesRow: NULL
// never matches, comparisons follow engine.Compare (numeric coercion
// across int/float/bool/time, string ordering for strings, incomparable
// types never match, NULL clause values compare below everything, NaN
// compares equal to everything).
type Index struct {
	mu sync.RWMutex
	// t is the newest table version the index has been synced to; suffix
	// decodes read from it (its rows cover every requested length).
	t *engine.Table
	// clauses caches canonical match masks keyed by the clause value
	// itself (Clause is comparable), so cache hits allocate nothing.
	clauses map[Clause]*maskEntry
	// nonNull caches the non-NULL row mask per column index — the
	// complement half the executor's 3VL filter lowering needs to turn
	// "comparison is FALSE" into a mask.
	nonNull map[int]*maskEntry
}

// maskEntry is one mask's canonical growable state: bits for rows
// [0, built) in words, plus the snapshot cache at the newest length.
type maskEntry struct {
	words []uint64
	built int
	snap  *bitset.Bitset
}

// NewIndex returns an index over t.
func NewIndex(t *engine.Table) *Index {
	return &Index{
		t:       t,
		clauses: make(map[Clause]*maskEntry),
		nonNull: make(map[int]*maskEntry),
	}
}

// sharedIndexKey keys the table family's shared index in the engine's
// aux cache.
type sharedIndexKey struct{}

// Shared returns the table family's shared index, creating it on first
// request through the engine's aux cache. The index implements
// engine.RowSynced, so requesting it through a grown copy-on-write
// version rebases it: cached clause masks then extend by decoding only
// the appended suffix.
//
// The shared index lives as long as the table family and never evicts,
// so it is only for BOUNDED clause vocabularies — statement-driven
// WHERE clauses (the executor's filter lowering). Analysis passes whose
// clause thresholds are data-dependent and churn per run (the ranker's
// candidate scoring) must own a NewIndex scoped to their own lifetime
// instead, or every Debug pass would permanently grow this cache.
func Shared(t *engine.Table) *Index {
	return t.AuxLoadOrStore(sharedIndexKey{}, func() any {
		return NewIndex(t)
	}).(*Index)
}

// NumClauses reports how many clause masks the index currently caches
// (capacity accounting for carried indexes).
func (ix *Index) NumClauses() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.clauses)
}

// Table returns the newest indexed table version.
func (ix *Index) Table() *engine.Table {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.t
}

// SyncRows implements engine.RowSynced: it rebases the index onto t
// when t is a newer (longer) version of the indexed table family.
// Cached masks extend lazily, on their next request.
func (ix *Index) SyncRows(t *engine.Table) {
	ix.mu.Lock()
	if t.NumRows() > ix.t.NumRows() {
		ix.t = t
	}
	ix.mu.Unlock()
}

// ClauseBits returns the match mask of one clause at the newest synced
// length. The returned bitset is shared and read-only.
func (ix *Index) ClauseBits(c Clause) *bitset.Bitset {
	return ix.ClauseBitsAt(c, ix.Table().NumRows())
}

// ClauseBitsAt returns the match mask of one clause over the first n
// rows — the form queries use so a statement executing against an older
// table version gets masks of exactly its length, even while newer
// versions have already extended the canonical bits. The returned
// bitset is shared and read-only.
func (ix *Index) ClauseBitsAt(c Clause, n int) *bitset.Bitset {
	if c.Val.T == engine.TFloat && math.IsNaN(c.Val.F) {
		// NaN keys never hit a map; build uncached rather than leak an
		// entry per call.
		e := &maskEntry{}
		ix.mu.RLock()
		ix.extendClause(e, c, n)
		ix.mu.RUnlock()
		return bitset.FromWords(n, e.words)
	}
	ix.mu.RLock()
	e, ok := ix.clauses[c]
	if ok && e.built >= n {
		if s := e.snap; s != nil && s.Len() == n {
			ix.mu.RUnlock()
			return s
		}
	}
	ix.mu.RUnlock()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	e, ok = ix.clauses[c]
	if !ok {
		e = &maskEntry{}
		ix.clauses[c] = e
	}
	if e.built < n {
		ix.extendClause(e, c, n)
		e.built = n
		e.snap = nil
	}
	return e.snapshot(n)
}

// NonNullBits returns the mask of rows where column ci is not NULL at
// the newest synced length (empty for out-of-range columns). The
// returned bitset is shared and read-only.
func (ix *Index) NonNullBits(ci int) *bitset.Bitset {
	return ix.NonNullBitsAt(ci, ix.Table().NumRows())
}

// NonNullBitsAt is NonNullBits over the first n rows; see ClauseBitsAt.
func (ix *Index) NonNullBitsAt(ci int, n int) *bitset.Bitset {
	ix.mu.RLock()
	e, ok := ix.nonNull[ci]
	if ok && e.built >= n {
		if s := e.snap; s != nil && s.Len() == n {
			ix.mu.RUnlock()
			return s
		}
	}
	ix.mu.RUnlock()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	e, ok = ix.nonNull[ci]
	if !ok {
		e = &maskEntry{}
		ix.nonNull[ci] = e
	}
	if e.built < n {
		if ci >= 0 && ci < len(ix.t.Schema()) {
			ix.extendNonNull(e, ci, n)
		}
		e.built = n
		e.snap = nil
	}
	return e.snapshot(n)
}

// snapshot stamps an immutable length-n bitset out of the canonical
// words: the newest length is cached, older lengths (in-flight queries
// against a superseded table version) are copied on demand. The copy is
// n/64 words — bits below built never change, so the prefix memcpy plus
// a ghost-bit trim is all a shorter view needs.
func (e *maskEntry) snapshot(n int) *bitset.Bitset {
	if s := e.snap; s != nil && s.Len() == n {
		return s
	}
	b := bitset.SnapshotWords(n, e.words)
	if n == e.built {
		e.snap = b
	}
	return b
}

// opMatchesCmp reports whether comparison outcome cmp satisfies op —
// the single op dispatch shared by Clause.Matches and the vectorized
// clause-mask builders.
func opMatchesCmp(op Op, cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNeq:
		return cmp != 0
	case OpLe:
		return cmp <= 0
	case OpGe:
		return cmp >= 0
	case OpLt:
		return cmp < 0
	case OpGt:
		return cmp > 0
	}
	return false
}

// extendClause decodes rows [e.built, n) of clause c into e.words.
// Caller holds ix.mu (read lock suffices only for the uncached NaN
// path, which owns its entry).
func (ix *Index) extendClause(e *maskEntry, c Clause, n int) {
	lo := e.built
	if lo >= n {
		return
	}
	ci := ix.t.Schema().ColIndex(c.Col)
	if ci < 0 {
		return // unknown column matches nothing
	}
	colType := ix.t.Schema()[ci].Type

	// NULL clause value: engine.Compare places NULL below every non-NULL
	// value, so every non-NULL row compares as +1.
	if c.Val.IsNull() {
		if opMatchesCmp(c.Op, 1) {
			ix.extendNonNull(e, ci, n)
		}
		return
	}

	switch {
	case colType.IsNumeric() && c.Val.T.IsNumeric():
		ix.extendNumeric(e, ci, c, lo, n)
	case colType == engine.TString && c.Val.T == engine.TString:
		ix.extendString(e, ci, c, lo, n)
	default:
		// Incomparable column/value types: engine.Compare errors, the
		// clause matches nothing.
	}
}

// extendNonNull sets every non-NULL row of column ci in [e.built, n).
func (ix *Index) extendNonNull(e *maskEntry, ci, n int) {
	lo := e.built
	if fv := ix.t.FloatView(ci); fv != nil {
		// Word-level Fill+AndNot over the suffix: ~64x fewer operations
		// than per-bit sets on the initial full-table build.
		bitset.OrRangeAndNot(&e.words, lo, n, fv.Null.Words())
		return
	}
	if dv := ix.t.DictView(ci); dv != nil {
		for r := lo; r < n; r++ {
			if dv.Codes[r] >= 0 {
				bitset.SetInWords(&e.words, r)
			}
		}
		return
	}
	col := ix.t.Column(ci)
	for r := lo; r < n; r++ {
		if !col[r].IsNull() {
			bitset.SetInWords(&e.words, r)
		}
	}
}

// extendNumeric evaluates a numeric clause against rows [lo, n) of the
// float view. The comparisons are written so NaN values yield cmp==0
// (both f<cv and f>cv false), matching engine.Compare's behavior
// exactly.
func (ix *Index) extendNumeric(e *maskEntry, ci int, c Clause, lo, n int) {
	fv := ix.t.FloatView(ci)
	cv := c.Val.Float()
	nulls := fv.Null
	var match func(f float64) bool
	switch c.Op {
	case OpEq:
		match = func(f float64) bool { return !(f < cv) && !(f > cv) }
	case OpNeq:
		match = func(f float64) bool { return f < cv || f > cv }
	case OpLe:
		match = func(f float64) bool { return !(f > cv) }
	case OpGe:
		match = func(f float64) bool { return !(f < cv) }
	case OpLt:
		match = func(f float64) bool { return f < cv }
	case OpGt:
		match = func(f float64) bool { return f > cv }
	default:
		return
	}
	for r := lo; r < n; r++ {
		if match(fv.Vals[r]) && !nulls.Get(r) {
			bitset.SetInWords(&e.words, r)
		}
	}
}

// extendString evaluates a string clause against rows [lo, n) of the
// dictionary view: the comparison runs once per distinct value, then
// fans out by code.
func (ix *Index) extendString(e *maskEntry, ci int, c Clause, lo, n int) {
	dv := ix.t.DictView(ci)
	verdict := make([]bool, len(dv.Values))
	for code, s := range dv.Values {
		verdict[code] = opMatchesCmp(c.Op, strings.Compare(s, c.Val.S))
	}
	for r := lo; r < n; r++ {
		if code := dv.Codes[r]; code >= 0 && verdict[code] {
			bitset.SetInWords(&e.words, r)
		}
	}
}

// MatchInto writes the rows matching p (within subset, or the whole
// table when subset is nil) into dst and returns it. dst's length picks
// the table version: every clause mask is stamped to it. The TRUE
// predicate matches everything in subset.
func (ix *Index) MatchInto(p Predicate, subset *bitset.Bitset, dst *bitset.Bitset) *bitset.Bitset {
	if subset != nil {
		dst.CopyFrom(subset)
	} else {
		dst.Fill()
	}
	for _, c := range p.Clauses {
		dst.And(ix.ClauseBitsAt(c, dst.Len()))
	}
	return dst
}

// MatchingBitset returns the rows of the indexed table satisfying p
// (restricted to subset when non-nil) as a fresh bitset — the vectorized
// counterpart of Predicate.MatchingRows.
func (p Predicate) MatchingBitset(ix *Index, subset *bitset.Bitset) *bitset.Bitset {
	return ix.MatchInto(p, subset, bitset.New(ix.Table().NumRows()))
}
