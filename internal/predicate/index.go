package predicate

import (
	"math"
	"strings"
	"sync"

	"repro/internal/bitset"
	"repro/internal/engine"
)

// Index evaluates predicates against one table column-at-a-time. Each
// clause is evaluated once over the whole table into a bitset mask and
// cached; a predicate match is then just the AND of its clause masks
// (and an optional subset mask). Candidate predicates share clauses
// heavily — tree paths reuse the same attribute thresholds, and the
// ranker's pruning re-scores one-clause-removed variants — so the cache
// hit rate is high and steady-state matching allocates nothing.
//
// Evaluation semantics are bit-for-bit identical to MatchesRow: NULL
// never matches, comparisons follow engine.Compare (numeric coercion
// across int/float/bool/time, string ordering for strings, incomparable
// types never match, NULL clause values compare below everything, NaN
// compares equal to everything).
type Index struct {
	t  *engine.Table
	mu sync.RWMutex
	// clauses caches full-table match masks keyed by the clause value
	// itself (Clause is comparable), so cache hits allocate nothing.
	clauses map[Clause]*bitset.Bitset
	// nonNull caches the non-NULL row mask per column index — the
	// complement half the executor's 3VL filter lowering needs to turn
	// "comparison is FALSE" into a mask.
	nonNull map[int]*bitset.Bitset
}

// NewIndex returns an index over t.
func NewIndex(t *engine.Table) *Index {
	return &Index{
		t:       t,
		clauses: make(map[Clause]*bitset.Bitset),
		nonNull: make(map[int]*bitset.Bitset),
	}
}

// Table returns the indexed table.
func (ix *Index) Table() *engine.Table { return ix.t }

// ClauseBits returns the cached full-table match mask of one clause.
// The returned bitset is shared and read-only.
func (ix *Index) ClauseBits(c Clause) *bitset.Bitset {
	if c.Val.T == engine.TFloat && math.IsNaN(c.Val.F) {
		// NaN keys never hit a map; build uncached rather than leak an
		// entry per call.
		return ix.buildClause(c)
	}
	n := ix.t.NumRows()
	ix.mu.RLock()
	b, ok := ix.clauses[c]
	ix.mu.RUnlock()
	if ok && b.Len() == n {
		return b
	}
	// Miss, or the table grew since the mask was cached: rebuild, like
	// the engine's column views do on row-count change.
	b = ix.buildClause(c)
	ix.mu.Lock()
	if prev, ok := ix.clauses[c]; ok && prev.Len() == n {
		b = prev // another goroutine won the race; share its mask
	} else {
		ix.clauses[c] = b
	}
	ix.mu.Unlock()
	return b
}

// NonNullBits returns the cached mask of rows where column ci is not
// NULL (empty for out-of-range columns). The returned bitset is shared
// and read-only.
func (ix *Index) NonNullBits(ci int) *bitset.Bitset {
	n := ix.t.NumRows()
	ix.mu.RLock()
	b, ok := ix.nonNull[ci]
	ix.mu.RUnlock()
	if ok && b.Len() == n {
		return b
	}
	b = bitset.New(n)
	if ci >= 0 && ci < len(ix.t.Schema()) {
		ix.setNonNull(b, ci)
	}
	ix.mu.Lock()
	if prev, ok := ix.nonNull[ci]; ok && prev.Len() == n {
		b = prev
	} else {
		ix.nonNull[ci] = b
	}
	ix.mu.Unlock()
	return b
}

// opMatchesCmp reports whether comparison outcome cmp satisfies op —
// the single op dispatch shared by Clause.Matches and the vectorized
// clause-mask builders.
func opMatchesCmp(op Op, cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNeq:
		return cmp != 0
	case OpLe:
		return cmp <= 0
	case OpGe:
		return cmp >= 0
	case OpLt:
		return cmp < 0
	case OpGt:
		return cmp > 0
	}
	return false
}

func (ix *Index) buildClause(c Clause) *bitset.Bitset {
	n := ix.t.NumRows()
	out := bitset.New(n)
	ci := ix.t.Schema().ColIndex(c.Col)
	if ci < 0 {
		return out // unknown column matches nothing
	}
	colType := ix.t.Schema()[ci].Type

	// NULL clause value: engine.Compare places NULL below every non-NULL
	// value, so every non-NULL row compares as +1.
	if c.Val.IsNull() {
		if opMatchesCmp(c.Op, 1) {
			ix.setNonNull(out, ci)
		}
		return out
	}

	switch {
	case colType.IsNumeric() && c.Val.T.IsNumeric():
		ix.buildNumeric(out, ci, c)
	case colType == engine.TString && c.Val.T == engine.TString:
		ix.buildString(out, ci, c)
	default:
		// Incomparable column/value types: engine.Compare errors, the
		// clause matches nothing.
	}
	return out
}

// setNonNull sets every non-NULL row of column ci.
func (ix *Index) setNonNull(out *bitset.Bitset, ci int) {
	if fv := ix.t.FloatView(ci); fv != nil {
		out.Fill()
		out.AndNot(fv.Null)
		return
	}
	if dv := ix.t.DictView(ci); dv != nil {
		for r, code := range dv.Codes {
			if code >= 0 {
				out.Set(r)
			}
		}
		return
	}
	col := ix.t.Column(ci)
	for r, v := range col {
		if !v.IsNull() {
			out.Set(r)
		}
	}
}

// buildNumeric evaluates a numeric clause against the float view. The
// comparisons are written so NaN values yield cmp==0 (both f<cv and
// f>cv false), matching engine.Compare's behavior exactly.
func (ix *Index) buildNumeric(out *bitset.Bitset, ci int, c Clause) {
	fv := ix.t.FloatView(ci)
	cv := c.Val.Float()
	nulls := fv.Null
	var match func(f float64) bool
	switch c.Op {
	case OpEq:
		match = func(f float64) bool { return !(f < cv) && !(f > cv) }
	case OpNeq:
		match = func(f float64) bool { return f < cv || f > cv }
	case OpLe:
		match = func(f float64) bool { return !(f > cv) }
	case OpGe:
		match = func(f float64) bool { return !(f < cv) }
	case OpLt:
		match = func(f float64) bool { return f < cv }
	case OpGt:
		match = func(f float64) bool { return f > cv }
	default:
		return
	}
	for r, f := range fv.Vals {
		if match(f) && !nulls.Get(r) {
			out.Set(r)
		}
	}
}

// buildString evaluates a string clause against the dictionary view:
// the comparison runs once per distinct value, then fans out by code.
func (ix *Index) buildString(out *bitset.Bitset, ci int, c Clause) {
	dv := ix.t.DictView(ci)
	verdict := make([]bool, len(dv.Values))
	for code, s := range dv.Values {
		verdict[code] = opMatchesCmp(c.Op, strings.Compare(s, c.Val.S))
	}
	for r, code := range dv.Codes {
		if code >= 0 && verdict[code] {
			out.Set(r)
		}
	}
}

// MatchInto writes the rows matching p (within subset, or the whole
// table when subset is nil) into dst and returns it. dst must have
// length == table rows. The TRUE predicate matches everything in subset.
func (ix *Index) MatchInto(p Predicate, subset *bitset.Bitset, dst *bitset.Bitset) *bitset.Bitset {
	if subset != nil {
		dst.CopyFrom(subset)
	} else {
		dst.Fill()
	}
	for _, c := range p.Clauses {
		dst.And(ix.ClauseBits(c))
	}
	return dst
}

// MatchingBitset returns the rows of the indexed table satisfying p
// (restricted to subset when non-nil) as a fresh bitset — the vectorized
// counterpart of Predicate.MatchingRows.
func (p Predicate) MatchingBitset(ix *Index, subset *bitset.Bitset) *bitset.Bitset {
	return ix.MatchInto(p, subset, bitset.New(ix.t.NumRows()))
}
