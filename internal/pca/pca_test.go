package pca

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitRecoversDominantDirection(t *testing.T) {
	// Points stretched along (1, 1)/√2 with small orthogonal noise.
	rng := rand.New(rand.NewSource(1))
	var points [][]float64
	for i := 0; i < 500; i++ {
		tv := rng.NormFloat64() * 10
		noise := rng.NormFloat64() * 0.1
		points = append(points, []float64{
			tv/math.Sqrt2 - noise/math.Sqrt2,
			tv/math.Sqrt2 + noise/math.Sqrt2,
		})
	}
	res, err := Fit(points, 2)
	if err != nil {
		t.Fatal(err)
	}
	c0 := res.Components[0]
	// Dominant direction ≈ ±(0.707, 0.707).
	if math.Abs(math.Abs(c0[0])-1/math.Sqrt2) > 0.02 || math.Abs(math.Abs(c0[1])-1/math.Sqrt2) > 0.02 {
		t.Errorf("dominant component: %v", c0)
	}
	if res.ExplainedRatio(0) < 0.99 {
		t.Errorf("explained ratio: %v", res.ExplainedRatio(0))
	}
	if len(res.Eigenvalues) == 2 && res.Eigenvalues[1] > res.Eigenvalues[0] {
		t.Error("eigenvalues not descending")
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var points [][]float64
	for i := 0; i < 300; i++ {
		points = append(points, []float64{
			rng.NormFloat64() * 5, rng.NormFloat64() * 2, rng.NormFloat64(),
		})
	}
	res, err := Fit(points, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, ci := range res.Components {
		var n float64
		for _, x := range ci {
			n += x * x
		}
		if math.Abs(n-1) > 1e-6 {
			t.Errorf("component %d norm² %v", i, n)
		}
		for j := i + 1; j < len(res.Components); j++ {
			var dot float64
			for d := range ci {
				dot += ci[d] * res.Components[j][d]
			}
			if math.Abs(dot) > 1e-4 {
				t.Errorf("components %d,%d not orthogonal: %v", i, j, dot)
			}
		}
	}
}

// Property: sum of eigenvalues <= total variance (within tolerance), and
// each ExplainedRatio in [0, 1].
func TestEigenvaluesBounded(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 8 {
			return true
		}
		var points [][]float64
		for i := 0; i+1 < len(raw); i += 2 {
			points = append(points, []float64{float64(raw[i]), float64(raw[i+1])})
		}
		res, err := Fit(points, 2)
		if err != nil {
			return true // degenerate inputs are allowed to fail
		}
		var sum float64
		for i := range res.Eigenvalues {
			r := res.ExplainedRatio(i)
			if r < -1e-9 || r > 1+1e-9 {
				return false
			}
			sum += res.Eigenvalues[i]
		}
		return sum <= res.TotalVariance*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTransformCentersData(t *testing.T) {
	points := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	res, err := Fit(points, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Projections of the data must be zero-mean.
	var sum float64
	for _, p := range points {
		sum += res.Transform(p)[0]
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("projection mean: %v", sum/3)
	}
}

func TestProject2D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var points [][]float64
	for i := 0; i < 100; i++ {
		points = append(points, []float64{rng.NormFloat64(), rng.NormFloat64() * 3, rng.NormFloat64() * 0.2})
	}
	proj, res, err := Project2D(points)
	if err != nil {
		t.Fatal(err)
	}
	if len(proj) != 100 {
		t.Fatalf("projection size: %d", len(proj))
	}
	if len(res.Components) != 2 {
		t.Fatalf("components: %d", len(res.Components))
	}
	// First component captures the ×3 dimension: projections along it
	// must have larger spread.
	var v0, v1 float64
	for _, p := range proj {
		v0 += p[0] * p[0]
		v1 += p[1] * p[1]
	}
	if v0 <= v1 {
		t.Errorf("component order: var0=%v var1=%v", v0, v1)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 2); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Fit([][]float64{{}}, 1); err == nil {
		t.Error("zero-dim accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, 1); err == nil {
		t.Error("ragged input accepted")
	}
	if _, err := Fit([][]float64{{1, 1}, {1, 1}}, 1); err == nil {
		t.Error("zero-variance accepted")
	}
	if _, err := Fit([][]float64{{1, 2}}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestKClamped(t *testing.T) {
	points := [][]float64{{1, 2}, {3, 1}, {2, 5}, {0, 1}}
	res, err := Fit(points, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) > 2 {
		t.Errorf("components: %d", len(res.Components))
	}
}
