// Package pca implements principal component analysis via power
// iteration with deflation. The paper (§2.2.1) proposes plotting "the
// two largest principal components against each other" to visualize
// multi-attribute group-by results; Project2D is that operation, used by
// the dashboard and the viz helpers when a result has more than two
// group-by attributes.
package pca

import (
	"fmt"
	"math"
)

// Result holds the fitted components.
type Result struct {
	// Components holds the top-k unit-norm principal directions, rows of
	// length dim.
	Components [][]float64
	// Eigenvalues holds the corresponding variance captured by each
	// component, descending.
	Eigenvalues []float64
	// Mean is the per-dimension mean removed before fitting.
	Mean []float64
	// TotalVariance is the trace of the covariance matrix.
	TotalVariance float64
}

// ExplainedRatio returns the fraction of total variance captured by
// component i.
func (r *Result) ExplainedRatio(i int) float64 {
	if r.TotalVariance <= 0 || i >= len(r.Eigenvalues) {
		return 0
	}
	return r.Eigenvalues[i] / r.TotalVariance
}

// Fit computes the top-k principal components of points (n×dim) using
// power iteration with Hotelling deflation. Deterministic: the start
// vector is fixed. k is clamped to dim.
func Fit(points [][]float64, k int) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("pca: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("pca: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("pca: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if k > dim {
		k = dim
	}
	if k <= 0 {
		return nil, fmt.Errorf("pca: k must be positive")
	}

	// Mean-center.
	mean := make([]float64, dim)
	for _, p := range points {
		for d, v := range p {
			mean[d] += v
		}
	}
	for d := range mean {
		mean[d] /= float64(n)
	}

	// Covariance matrix (dim×dim). dim is small (a handful of group-by
	// attributes), so the dense O(n·dim²) build is fine.
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	centered := make([]float64, dim)
	for _, p := range points {
		for d := range p {
			centered[d] = p[d] - mean[d]
		}
		for i := 0; i < dim; i++ {
			ci := centered[i]
			if ci == 0 {
				continue
			}
			row := cov[i]
			for j := i; j < dim; j++ {
				row[j] += ci * centered[j]
			}
		}
	}
	den := float64(n - 1)
	if den < 1 {
		den = 1
	}
	var trace float64
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			cov[i][j] /= den
			cov[j][i] = cov[i][j]
		}
		trace += cov[i][i]
	}

	res := &Result{Mean: mean, TotalVariance: trace}
	work := make([]float64, dim)
	for c := 0; c < k; c++ {
		vec, eig, ok := powerIterate(cov, work)
		if !ok || eig <= 1e-12 {
			break
		}
		res.Components = append(res.Components, vec)
		res.Eigenvalues = append(res.Eigenvalues, eig)
		// Deflate: cov -= eig * vec vecᵀ.
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				cov[i][j] -= eig * vec[i] * vec[j]
			}
		}
	}
	if len(res.Components) == 0 {
		return nil, fmt.Errorf("pca: degenerate data (zero variance)")
	}
	return res, nil
}

// powerIterate finds the dominant eigenpair of a symmetric matrix.
func powerIterate(m [][]float64, work []float64) ([]float64, float64, bool) {
	dim := len(m)
	v := make([]float64, dim)
	// Deterministic start: slightly asymmetric so it is not orthogonal
	// to the dominant eigenvector by accident.
	for i := range v {
		v[i] = 1 + 0.001*float64(i)
	}
	normalize(v)
	var eig float64
	for iter := 0; iter < 500; iter++ {
		// work = m v
		for i := 0; i < dim; i++ {
			var s float64
			row := m[i]
			for j := 0; j < dim; j++ {
				s += row[j] * v[j]
			}
			work[i] = s
		}
		newEig := norm(work)
		if newEig <= 1e-15 {
			return nil, 0, false
		}
		for i := range v {
			v[i] = work[i] / newEig
		}
		if math.Abs(newEig-eig) <= 1e-12*math.Max(1, newEig) {
			eig = newEig
			break
		}
		eig = newEig
	}
	out := make([]float64, dim)
	copy(out, v)
	return out, eig, true
}

func norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	n := norm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// Transform projects a point onto the fitted components.
func (r *Result) Transform(p []float64) []float64 {
	out := make([]float64, len(r.Components))
	for c, comp := range r.Components {
		var s float64
		for d := range comp {
			s += (p[d] - r.Mean[d]) * comp[d]
		}
		out[c] = s
	}
	return out
}

// Project2D fits two components and returns the n×2 projection — the
// paper's proposed visualization for multi-attribute group-bys.
func Project2D(points [][]float64) ([][2]float64, *Result, error) {
	res, err := Fit(points, 2)
	if err != nil {
		return nil, nil, err
	}
	out := make([][2]float64, len(points))
	for i, p := range points {
		t := res.Transform(p)
		out[i][0] = t[0]
		if len(t) > 1 {
			out[i][1] = t[1]
		}
	}
	return out, res, nil
}
