package store

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
)

// Open mounts (or initializes) a store directory, recovering every
// table in it into a fresh engine catalog. Recovery is designed to
// degrade gracefully rather than refuse to start:
//
//   - Stray *.tmp files (interrupted atomic writes) are removed.
//   - A torn WAL tail is truncated at the last whole record.
//   - A segment file that fails any of its checksums is QUARANTINED —
//     renamed to <name>.quarantined, logged, and counted in Stats —
//     never silently served and never deleted.
//   - The table is served from the longest recoverable SUFFIX of the
//     stream: the newest contiguous run of segments (from files, or
//     from the WAL when the crash hit between segment write and WAL
//     rewrite) plus the WAL tail. Older valid segments cut off by a
//     quarantined gap are left on disk untouched; the gap is reported
//     via Stats.GapSegments.
//   - A corrupt manifest is rebuilt from the schema echo in the newest
//     valid segment header. Only when neither manifest nor any segment
//     header survives is the table skipped (reason in Stats.Skipped).
//
// After rebuilding the in-memory table, Open completes any interrupted
// seal (re-spilling segment files the crash lost) and rewrites the WAL
// to exactly the current tail, so a second crash-free Open is a no-op.
func Open(dir string, opts Options) (*DB, error) {
	opts.fill()
	s := &DB{
		fs:      opts.FS,
		dir:     dir,
		opts:    opts,
		eng:     engine.NewDB(),
		tables:  make(map[string]*tableStore),
		skipped: make(map[string]string),
	}
	if opts.MaxResidentBytes > 0 {
		s.pool = newBufferPool(opts.MaxResidentBytes)
	}
	if err := s.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	ents, err := s.fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range ents {
		if !e.Dir {
			continue
		}
		ts, t, err := s.recoverTable(e.Name)
		if err != nil {
			s.opts.Logf("store: skipping table %s: %v", e.Name, err)
			s.skipped[e.Name] = err.Error()
			continue
		}
		s.eng.Register(t)
		s.tables[ts.name] = ts
	}
	return s, nil
}

// recoverTable rebuilds one table directory. It returns the durable
// state and the recovered engine table, or an error when nothing
// trustworthy survives.
func (s *DB) recoverTable(name string) (*tableStore, *engine.Table, error) {
	dir := join(s.dir, name)
	ents, err := s.fs.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}

	// Clear interrupted atomic writes and index the segment files.
	segFiles := map[int]bool{}
	for _, e := range ents {
		if e.Dir {
			continue
		}
		if strings.HasSuffix(e.Name, ".tmp") {
			s.opts.Logf("store: %s: removing interrupted write %s", name, e.Name)
			_ = s.fs.Remove(join(dir, e.Name))
			continue
		}
		if idx := parseSegFileName(e.Name); idx >= 0 {
			segFiles[idx] = true
		}
	}

	// Manifest, or its reconstruction from a segment header.
	var (
		m         manifest
		rebuilt   bool
		manErr    error
		quarantin []string
	)
	if raw, err := readFileAll(s.fs, join(dir, manifestName)); err != nil {
		manErr = err
	} else {
		m, manErr = decodeManifest(raw)
	}
	if manErr != nil {
		m, err = s.rebuildManifest(name, dir, segFiles, manErr)
		if err != nil {
			return nil, nil, err
		}
		rebuilt = true
	}
	schema := m.engineSchema()
	segBits := m.SegBits
	segRows := 1 << segBits
	baseSeg := m.Base >> segBits

	// Drop segment files a crashed retention pass left below the
	// manifested base: the manifest committed their deletion.
	for idx := range segFiles {
		if idx < baseSeg {
			s.opts.Logf("store: %s: removing retained-out segment %d", name, idx)
			_ = s.fs.Remove(join(dir, segFileName(idx)))
			delete(segFiles, idx)
		}
	}

	// Dictionary.
	dict, dictLen := s.recoverDict(name, dir, &quarantin)

	// Validate segment files; quarantine failures. Resident mode decodes
	// every file end to end; out-of-core mode validates only the
	// envelope (header, zone block, footer) via openSegMeta and defers
	// section reads to fault time — this is what makes Open O(segment
	// count), not O(data).
	outOfCore := s.opts.MaxResidentBytes > 0
	segCols := map[int][][]engine.Value{}
	metas := map[int]*segMeta{}
	idxs := make([]int, 0, len(segFiles))
	for idx := range segFiles {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		fname := segFileName(idx)
		var cols [][]engine.Value
		var meta *segMeta
		var err error
		if outOfCore {
			meta, err = openSegMeta(s.fs, join(dir, fname), schema, segBits, idx, dict, s.opts.Logf)
		} else {
			var data []byte
			data, err = readFileAll(s.fs, join(dir, fname))
			if err == nil {
				cols, err = decodeSegment(data, schema, segBits, idx, dict)
			}
		}
		if err != nil {
			s.opts.Logf("store: %s: quarantining segment %d: %v", name, idx, err)
			_ = s.fs.Rename(join(dir, fname), join(dir, fname+".quarantined"))
			_ = s.fs.SyncDir(dir)
			quarantin = append(quarantin, fname)
			continue
		}
		if meta != nil {
			metas[idx] = meta
		} else {
			segCols[idx] = cols
		}
	}

	// WAL: valid record prefix, torn tail truncated.
	walRecs := s.recoverWAL(name, dir, schema)
	ws, we := 0, 0
	if len(walRecs) > 0 {
		ws = walRecs[0].startRow
		last := walRecs[len(walRecs)-1]
		we = last.startRow + len(last.rows)
	}

	// Assemble the served suffix. Coverage per stream segment index:
	// a valid file, or full containment in the WAL's row range. The
	// WAL's partial last segment is the tail — unless a segment file
	// at or above it exists, in which case the WAL is a stale leftover
	// (DisableWAL runs) and the files win.
	covered := func(idx int) bool {
		return segCols[idx] != nil || metas[idx] != nil || (ws <= idx<<segBits && (idx+1)<<segBits <= we)
	}
	maxCov := -1
	for idx := range segCols {
		if idx > maxCov {
			maxCov = idx
		}
	}
	for idx := range metas {
		if idx > maxCov {
			maxCov = idx
		}
	}
	// The WAL's start is always segment-aligned (creation and every
	// rewrite begin at a seal boundary), so it fully covers segments
	// ws>>segBits .. we>>segBits-1.
	if lastFull := we>>segBits - 1; we > ws && lastFull >= ws>>segBits && lastFull > maxCov {
		maxCov = lastFull
	}
	var tailRows [][]engine.Value
	e := maxCov
	if we&(segRows-1) != 0 && we>>segBits > maxCov {
		// The WAL's partial last segment extends past every sealed
		// segment: serve it as the tail, with the sealed run required
		// to reach it contiguously. (When a segment file at or above
		// it exists instead, the WAL is a stale leftover of a
		// DisableWAL run and the files win.)
		e = we>>segBits - 1
		tailRows = walRowRange(walRecs, we>>segBits<<segBits, we)
	}
	serveBase := m.Base
	if e >= baseSeg || len(tailRows) > 0 {
		// Walk down from the newest recoverable point while coverage
		// stays contiguous; the served suffix starts where it breaks.
		st := e + 1
		for st > baseSeg && covered(st-1) {
			st--
		}
		serveBase = st << segBits
	}
	gap := serveBase>>segBits - baseSeg
	if gap > 0 {
		s.opts.Logf("store: %s: %d segment(s) after base %d unrecoverable; serving stream suffix from row %d",
			name, gap, m.Base, serveBase)
	}

	// Rebuild the engine table: sealed segments in order, then tail.
	t, err := engine.NewTableSegBase(m.Name, schema, segBits, serveBase)
	if err != nil {
		return nil, nil, err
	}
	var loader *tableLoader
	if outOfCore {
		// Preload the engine dictionaries from the store dictionary so
		// the on-disk code sections serve directly as engine codes (the
		// two intern in the same first-appearance order from here on).
		for c, col := range schema {
			if col.Type != engine.TString {
				continue
			}
			if err := t.PreloadDict(c, dict.snapshot(c, dict.count(c))); err != nil {
				return nil, nil, fmt.Errorf("preloading dictionary: %w", err)
			}
		}
		loader = &tableLoader{
			pool:    s.pool,
			fs:      s.fs,
			name:    strings.ToLower(name),
			schema:  schema,
			segBits: segBits,
			dict:    dict,
			metas:   metas,
			logf:    s.opts.Logf,
		}
	}
	nextSeg := serveBase >> segBits
	filePrefix := true
	for idx := serveBase >> segBits; idx <= e; idx++ {
		if meta := metas[idx]; meta != nil {
			if t, err = t.AttachLoadedSegment(loader, meta.zones); err != nil {
				return nil, nil, fmt.Errorf("attaching segment %d: %w", idx, err)
			}
			if filePrefix {
				nextSeg = idx + 1
			}
			continue
		}
		var rows [][]engine.Value
		if cols := segCols[idx]; cols != nil {
			rows = transpose(cols, segRows)
			if filePrefix {
				nextSeg = idx + 1
			}
		} else {
			rows = walRowRange(walRecs, idx<<segBits, (idx+1)<<segBits)
			filePrefix = false
		}
		if t, err = t.AppendBatch(rows); err != nil {
			return nil, nil, fmt.Errorf("replaying segment %d: %w", idx, err)
		}
	}
	if len(tailRows) > 0 {
		if t, err = t.AppendBatch(tailRows); err != nil {
			return nil, nil, fmt.Errorf("replaying wal tail: %w", err)
		}
	}

	ts := &tableStore{
		name:          strings.ToLower(name),
		dir:           dir,
		schema:        schema,
		segBits:       segBits,
		dict:          dict,
		dictPersisted: dictLen,
		nextSeg:       nextSeg,
		base:          serveBase,
		quarantined:   quarantin,
		gapSegments:   gap,
		loader:        loader,
	}
	if rebuilt {
		// Persist the reconstruction so the next Open doesn't redo it.
		if enc, err := encodeManifest(manifestFor(m.Name, schema, segBits, serveBase)); err == nil {
			if err := writeFileAtomic(s.fs, join(dir, manifestName), enc); err != nil {
				return nil, nil, fmt.Errorf("rewriting manifest: %w", err)
			}
			ts.base = serveBase
		}
	}

	// Reopen the append handles and finish any interrupted work:
	// re-spill segments whose files the crash lost (their rows came
	// back via the WAL) and rewrite the WAL to exactly the tail.
	if ts.dictF, err = s.fs.OpenAppend(join(dir, dictFileName)); err != nil {
		return nil, nil, err
	}
	if dictLen == nil || allZero(dictLen) {
		// Brand-new or quarantined dict file: (re)write the magic.
		if err := s.ensureDictMagic(ts); err != nil {
			_ = ts.dictF.Close()
			return nil, nil, err
		}
	}
	if err := s.spillLocked(ts, t); err != nil {
		_ = ts.dictF.Close()
		return nil, nil, fmt.Errorf("completing interrupted seal: %w", err)
	}
	if !s.opts.DisableWAL {
		ns, tr := t.NumSegments()
		if err := s.rewriteWALLocked(ts, t, ns, tr); err != nil {
			_ = ts.dictF.Close()
			return nil, nil, fmt.Errorf("resetting wal: %w", err)
		}
	}
	return ts, t, nil
}

// rebuildManifest reconstructs a lost manifest from the newest segment
// file whose header still checks out.
func (s *DB) rebuildManifest(name, dir string, segFiles map[int]bool, cause error) (manifest, error) {
	idxs := make([]int, 0, len(segFiles))
	for idx := range segFiles {
		idxs = append(idxs, idx)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(idxs)))
	for _, idx := range idxs {
		data, err := readFileAll(s.fs, join(dir, segFileName(idx)))
		if err != nil {
			continue
		}
		schema, segBits, err := readSegHeader(data)
		if err != nil {
			continue
		}
		min := idx
		for i := range segFiles {
			if i < min {
				min = i
			}
		}
		s.opts.Logf("store: %s: manifest unreadable (%v); rebuilt from segment %d header", name, cause, idx)
		return manifestFor(name, schema, segBits, min<<segBits), nil
	}
	return manifest{}, fmt.Errorf("manifest unreadable (%v) and no segment header survives", cause)
}

// recoverDict loads dict.log, truncating a torn tail; an unreadable
// file is quarantined and the dictionary starts empty (segments that
// need the lost entries will quarantine themselves during validation).
func (s *DB) recoverDict(name, dir string, quarantin *[]string) (*storeDict, map[int]int) {
	path := join(dir, dictFileName)
	data, err := readFileAll(s.fs, path)
	if err != nil {
		return newStoreDict(), nil // absent: fresh dict, magic written later
	}
	dict, goodOff, magicOK := decodeDict(data)
	if !magicOK {
		if len(data) < len(dictMagic) && strings.HasPrefix(dictMagic, string(data)) {
			// Torn creation, not corruption: the crash hit before the
			// magic was durable. Start fresh.
			_ = s.fs.Truncate(path, 0)
			return newStoreDict(), nil
		}
		s.opts.Logf("store: %s: quarantining unreadable dictionary", name)
		_ = s.fs.Rename(path, path+".quarantined")
		_ = s.fs.SyncDir(dir)
		*quarantin = append(*quarantin, dictFileName)
		return newStoreDict(), nil
	}
	if goodOff < len(data) {
		s.opts.Logf("store: %s: truncating torn dictionary tail (%d of %d bytes valid)", name, goodOff, len(data))
		_ = s.fs.Truncate(path, int64(goodOff))
	}
	counts := make(map[int]int, len(dict.cols))
	for c, cd := range dict.cols {
		counts[c] = len(cd.values)
	}
	return dict, counts
}

// recoverWAL loads the valid record prefix of wal.log, truncating a
// torn tail in place. Any unreadable state simply yields no records.
func (s *DB) recoverWAL(name, dir string, schema engine.Schema) []walRecord {
	path := join(dir, walFileName)
	data, err := readFileAll(s.fs, path)
	if err != nil {
		return nil
	}
	recs, goodOff := decodeWAL(data, schema)
	if goodOff < len(data) {
		s.opts.Logf("store: %s: truncating torn wal tail (%d of %d bytes valid)", name, goodOff, len(data))
		if goodOff < len(walMagic) {
			goodOff = 0 // magic itself is damaged; rewrite handles it
		}
		_ = s.fs.Truncate(path, int64(goodOff))
	}
	return recs
}

// ensureDictMagic makes a fresh dict.log carry its magic; called when
// recovery found no persisted entries (new table dir or quarantined
// dict). dictF is open for append.
func (s *DB) ensureDictMagic(ts *tableStore) error {
	// The handle appends; only write the magic when the file is empty.
	ents, err := s.fs.ReadDir(ts.dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.Name == dictFileName {
			if data, err := readFileAll(s.fs, join(ts.dir, dictFileName)); err == nil && len(data) >= len(dictMagic) {
				return nil
			}
		}
	}
	if _, err := ts.dictF.Write([]byte(dictMagic)); err != nil {
		return err
	}
	return ts.dictF.Sync()
}

// walRowRange concatenates the WAL rows covering stream ids [lo, hi).
// decodeWAL guarantees the records are contiguous, so this is a simple
// window over the concatenation.
func walRowRange(recs []walRecord, lo, hi int) [][]engine.Value {
	out := make([][]engine.Value, 0, hi-lo)
	for _, rec := range recs {
		for i, row := range rec.rows {
			id := rec.startRow + i
			if id >= lo && id < hi {
				out = append(out, row)
			}
		}
	}
	return out
}

// transpose converts columnar segment data to the row-major batches
// engine.Table.AppendBatch consumes.
func transpose(cols [][]engine.Value, nrows int) [][]engine.Value {
	rows := make([][]engine.Value, nrows)
	for i := range rows {
		row := make([]engine.Value, len(cols))
		for c := range cols {
			row[c] = cols[c][i]
		}
		rows[i] = row
	}
	return rows
}

func allZero(m map[int]int) bool {
	for _, v := range m {
		if v != 0 {
			return false
		}
	}
	return true
}
