package store

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/testgen"
)

// This file is the crash matrix: an append/seal/retention workload is
// run against FaultFS with a crash injected at EVERY mutating
// operation in turn; after each crash the filesystem is "rebooted"
// (MemFS.Crash) and reopened, and the recovered table must be
// bit-identical to an oracle that holds exactly the acknowledged
// batches — plus, at most, the single operation that was in flight
// when the power died.

// crashOracle mirrors what the store has acknowledged to the client.
type crashOracle struct {
	rows      [][]engine.Value // all acked rows, indexed by stream id
	inflight  [][]engine.Value // rows of the append in flight at the crash
	baseLow   int              // base of the last ACKED retention
	syncedVer int              // rows the durability contract guarantees
	batches   int              // unsynced-batch mirror of the store's counter
	created   bool             // CreateTable acked
}

// runCrashWorkload drives a deterministic (per rng) workload through
// the store, maintaining the oracle, until an injected fault stops it
// or steps complete. Returns the store error that stopped it (nil on
// full completion).
func runCrashWorkload(st *DB, rng *rand.Rand, steps, syncEvery int, o *crashOracle) error {
	segBits := uint(engine.MinSegmentBits)
	if err := st.CreateTable("p", testgen.Schema(), segBits); err != nil {
		return err
	}
	o.created = true
	for i := 0; i < steps; i++ {
		tab, err := st.Eng().Table("p")
		if err != nil {
			return err
		}
		if i%6 == 5 {
			keep := tab.SegRows() * (1 + rng.Intn(3))
			_, stats, err := st.Retain("p", engine.RetentionPolicy{MaxRows: keep})
			if err != nil {
				return err
			}
			o.baseLow = stats.Base
			continue
		}
		batch := testgen.Batch(rng, testgen.BoundaryBatchSize(rng, tab))
		o.inflight = batch
		prevVer := tab.Version()
		nt, err := st.Append("p", batch)
		if err != nil {
			return err
		}
		o.rows = append(o.rows, batch...)
		o.inflight = nil
		// Mirror the durability floor: per-batch fsync at SyncEvery<=1;
		// otherwise every SyncEvery'th batch, and every seal (the WAL
		// rewrite fsyncs whatever tail remains).
		if syncEvery <= 1 {
			o.syncedVer = nt.Version()
		} else {
			o.batches++
			if o.batches >= syncEvery || nt.Version()>>segBits > prevVer>>segBits {
				o.syncedVer = nt.Version()
				o.batches = 0
			}
		}
	}
	return nil
}

// verifyRecovered checks the recovered store against the oracle.
func verifyRecovered(t *testing.T, st *DB, o *crashOracle, requireFloor bool) {
	t.Helper()
	stats := st.Stats()
	tab, err := st.Eng().Table("p")
	if err != nil {
		// The table may only be missing if its creation never acked.
		if o.created {
			t.Fatalf("acked table lost: %v (skipped: %v)", err, stats.Skipped)
		}
		return
	}
	// Crashes must never read as corruption.
	ts := stats.Tables["p"]
	if len(ts.Quarantined) != 0 || ts.GapSegments != 0 || len(stats.Skipped) != 0 {
		t.Fatalf("pure crash produced quarantine/gap: %+v", stats)
	}
	if requireFloor && tab.Version() < o.syncedVer {
		t.Fatalf("recovered version %d below durability floor %d", tab.Version(), o.syncedVer)
	}
	if tab.Base() < o.baseLow {
		t.Fatalf("recovered base %d below last acked retention base %d", tab.Base(), o.baseLow)
	}
	if tab.Base() > tab.Version() {
		t.Fatalf("recovered base %d beyond version %d", tab.Base(), tab.Version())
	}
	acked := len(o.rows)
	if max := acked + len(o.inflight); tab.Version() > max {
		t.Fatalf("recovered version %d beyond acked+inflight %d", tab.Version(), max)
	}
	for r := 0; r < tab.NumRows(); r++ {
		id := tab.Base() + r
		var want []engine.Value
		if id < acked {
			want = o.rows[id]
		} else {
			want = o.inflight[id-acked]
		}
		for c := 0; c < tab.NumCols(); c++ {
			if got := tab.Value(r, c); !valueEq(got, want[c]) {
				t.Fatalf("stream row %d col %d: got %v want %v", id, c, got, want[c])
			}
		}
	}
}

// runCrashMatrix crashes one workload shape at every failpoint.
func runCrashMatrix(t *testing.T, seed int64, steps, syncEvery int) {
	// Size the matrix: run once unarmed and count mutating operations.
	sizing := NewFaultFS(NewMemFS())
	st, err := Open("/db", quietOpts(sizing, syncEvery))
	if err != nil {
		t.Fatal(err)
	}
	if err := runCrashWorkload(st, rand.New(rand.NewSource(seed)), steps, syncEvery, &crashOracle{}); err != nil {
		t.Fatalf("unarmed workload failed: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	total := sizing.Ops()
	if total < 50 {
		t.Fatalf("workload too small for a meaningful matrix: %d ops", total)
	}

	for fail := 1; fail <= total; fail++ {
		fail := fail
		t.Run(fmt.Sprintf("failpoint-%03d", fail), func(t *testing.T) {
			mem := NewMemFS()
			ffs := NewFaultFS(mem)
			ffs.FailAt(fail, FaultCrash, rand.New(rand.NewSource(seed^int64(fail))))
			st, err := Open("/db", quietOpts(ffs, syncEvery))
			if err != nil {
				t.Fatal(err) // opening an empty dir does no mutating I/O
			}
			o := &crashOracle{}
			werr := runCrashWorkload(st, rand.New(rand.NewSource(seed)), steps, syncEvery, o)
			if werr == nil {
				t.Fatalf("failpoint %d of %d did not fire", fail, total)
			}
			if !errors.Is(werr, ErrInjected) && !errors.Is(werr, ErrCrashed) &&
				!errors.Is(werr, ErrClosed) && !errIsFailStop(werr) {
				t.Fatalf("workload died with unexpected error: %v", werr)
			}
			mem.Crash(rand.New(rand.NewSource(seed + int64(fail))))

			re, err := Open("/db", quietOpts(mem, syncEvery))
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			verifyRecovered(t, re, o, syncEvery <= 1)
			v1, b1 := tableShape(re)
			if err := re.Close(); err != nil {
				t.Fatalf("close after recovery: %v", err)
			}

			// Recovery must be idempotent: a second crash-free open
			// serves the identical table and performs no repair.
			re2, err := Open("/db", quietOpts(mem, syncEvery))
			if err != nil {
				t.Fatalf("second recovery open: %v", err)
			}
			verifyRecovered(t, re2, o, syncEvery <= 1)
			if v2, b2 := tableShape(re2); v2 != v1 || b2 != b1 {
				t.Fatalf("recovery not idempotent: version/base %d/%d then %d/%d", v1, b1, v2, b2)
			}
			if err := re2.Close(); err != nil {
				t.Fatalf("close after second recovery: %v", err)
			}
		})
	}
}

func errIsFailStop(err error) bool {
	return err != nil && (errors.Is(err, ErrInjected) || errors.Is(err, ErrCrashed))
}

func tableShape(st *DB) (version, base int) {
	tab, err := st.Eng().Table("p")
	if err != nil {
		return -1, -1
	}
	return tab.Version(), tab.Base()
}

// TestCrashMatrixSynced is the headline guarantee: with per-batch
// fsync, a crash at ANY system call loses nothing acknowledged.
func TestCrashMatrixSynced(t *testing.T) {
	runCrashMatrix(t, 42, 24, 1)
}

// TestCrashMatrixBatched covers the relaxed mode: crashes may lose a
// bounded suffix of acked batches but never tear or reorder one.
func TestCrashMatrixBatched(t *testing.T) {
	runCrashMatrix(t, 77, 24, 8)
}

// TestCrashMatrixSecondSeed varies the workload shape so the matrix
// isn't pinned to one interleaving of seals and retention passes.
func TestCrashMatrixSecondSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("one matrix seed is enough under -short")
	}
	runCrashMatrix(t, 1234, 30, 1)
}
