package store

import (
	"sync"

	"repro/internal/engine"
)

// bufferPool is the out-of-core chunk cache: a byte-budgeted,
// single-flight, pin-counted LRU over decoded segment-column chunks.
// It is the ONLY place faulted chunks are cached — segments never hold
// them — so MaxResidentBytes genuinely bounds what the store keeps
// resident (pinned chunks excepted: a pin is a promise to the scanner
// that the slices stay accounted until released, so the pool may
// transiently exceed its budget while pins are out).
//
// Lock order: the pool's mutex is a leaf — acquire/release never call
// out while holding it (loads run outside the lock under the entry's
// single-flight gate), so it can be taken from under the engine's view
// lock or a table lock without ordering concerns.
type bufferPool struct {
	mu      sync.Mutex
	max     int64 // byte budget; 0 = unlimited
	used    int64 // accounted bytes of all entries (pinned + LRU)
	entries map[chunkKey]*poolEntry
	// LRU list of UNPINNED entries only; head = least recently used.
	lruHead, lruTail *poolEntry
	npinned          int
	hits, misses     int64
	evictions        int64
}

// chunkKind distinguishes the decoded representations cached per
// segment-column: float vals+nulls, dictionary codes, boxed values.
type chunkKind uint8

const (
	chunkFloat chunkKind = iota
	chunkCodes
	chunkBoxed
)

// chunkKey identifies one cached chunk. seg is the STREAM segment
// index (stable across retention rebases).
type chunkKey struct {
	table string
	seg   int
	col   int
	kind  chunkKind
}

type poolEntry struct {
	key    chunkKey
	size   int64
	refs   int  // pins outstanding; 0 = on the LRU list
	doomed bool // invalidated while pinned/loading: free on last release

	// Single-flight load gate: the first acquirer sets loading and
	// loads outside the pool lock; waiters block on done.
	loading bool
	done    chan struct{}
	err     error

	// Exactly one representation is set, per key.kind.
	vals  []float64
	null  []uint64
	codes []int32
	boxed []engine.Value

	prev, next *poolEntry // LRU links, valid only while refs == 0
}

func newBufferPool(max int64) *bufferPool {
	return &bufferPool{max: max, entries: make(map[chunkKey]*poolEntry)}
}

// acquire returns the entry for key, pinned (refs incremented), loading
// it via load if absent. load runs outside the pool lock; concurrent
// acquirers of the same key wait for the single in-flight load. The
// returned release MUST be called exactly once (wrap in sync.Once if
// the call site can't guarantee it). missed reports whether this call
// performed the load (a pool miss).
func (p *bufferPool) acquire(key chunkKey, load func(e *poolEntry) (size int64, err error)) (e *poolEntry, release func(), missed bool, err error) {
	p.mu.Lock()
	for {
		e = p.entries[key]
		if e == nil {
			break // become the loader
		}
		if e.loading {
			done := e.done
			p.mu.Unlock()
			<-done
			p.mu.Lock()
			// The load may have failed and removed the entry, or the
			// entry may have been doomed and replaced; re-look-up.
			continue
		}
		// Resident hit.
		if e.refs == 0 {
			p.lruUnlink(e)
			p.npinned++
		}
		e.refs++
		p.hits++
		p.mu.Unlock()
		return e, p.releaseFunc(e), false, nil
	}

	e = &poolEntry{key: key, refs: 1, loading: true, done: make(chan struct{})}
	p.entries[key] = e
	p.npinned++
	p.misses++
	p.mu.Unlock()

	size, lerr := load(e)

	p.mu.Lock()
	e.loading = false
	if lerr != nil {
		// Failed load: nobody else may use this entry. Remove it (if
		// still registered) and wake waiters to retry or fail.
		if p.entries[key] == e {
			delete(p.entries, key)
		}
		p.npinned--
		e.err = lerr
		close(e.done)
		p.mu.Unlock()
		return nil, nil, true, lerr
	}
	e.size = size
	p.used += size
	p.evictLocked()
	close(e.done)
	p.mu.Unlock()
	return e, p.releaseFunc(e), true, nil
}

// releaseFunc builds the idempotent unpin closure for e.
func (p *bufferPool) releaseFunc(e *poolEntry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			e.refs--
			if e.refs == 0 {
				p.npinned--
				if e.doomed {
					if p.entries[e.key] == e {
						delete(p.entries, e.key)
					}
					p.used -= e.size
				} else {
					p.lruPushMRU(e)
					p.evictLocked()
				}
			}
			p.mu.Unlock()
		})
	}
}

// evictLocked drops least-recently-used unpinned entries until the
// budget is met. Caller holds p.mu.
func (p *bufferPool) evictLocked() {
	for p.max > 0 && p.used > p.max && p.lruHead != nil {
		e := p.lruHead
		p.lruUnlink(e)
		delete(p.entries, e.key)
		p.used -= e.size
		p.evictions++
	}
}

// invalidateBelow discards every cached chunk of table with stream
// segment index < firstKept — the retention hook, called after the
// segment files are unlinked. Pinned or in-flight entries are doomed
// instead (freed on last release), so racing scans on a stale version
// keep their slices.
func (p *bufferPool) invalidateBelow(table string, firstKept int) {
	p.mu.Lock()
	for key, e := range p.entries {
		if key.table != table || key.seg >= firstKept {
			continue
		}
		if e.refs > 0 || e.loading {
			e.doomed = true
			continue
		}
		p.lruUnlink(e)
		delete(p.entries, key)
		p.used -= e.size
	}
	p.mu.Unlock()
}

func (p *bufferPool) lruPushMRU(e *poolEntry) {
	e.prev = p.lruTail
	e.next = nil
	if p.lruTail != nil {
		p.lruTail.next = e
	} else {
		p.lruHead = e
	}
	p.lruTail = e
}

func (p *bufferPool) lruUnlink(e *poolEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		p.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		p.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

// PoolStats is a snapshot of the buffer pool's occupancy and traffic
// counters, surfaced through DB.Stats (and from there /api/stats).
type PoolStats struct {
	MaxBytes  int64 `json:"max_bytes"`
	UsedBytes int64 `json:"used_bytes"`
	Entries   int   `json:"entries"`
	Pinned    int   `json:"pinned"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

func (p *bufferPool) stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		MaxBytes:  p.max,
		UsedBytes: p.used,
		Entries:   len(p.entries),
		Pinned:    p.npinned,
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evictions,
	}
}

// pinnedCount returns the number of currently pinned entries — the
// chaos harness's quiesce invariant ("no scan leaked a pin").
func (p *bufferPool) pinnedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.npinned
}
