package store

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"repro/internal/engine"
)

// Package store makes the engine's segmented tables crash-safe. Layout
// under the store directory, one subdirectory per table (lower-cased
// name):
//
//	<dir>/<table>/manifest.json   identity: schema, segBits, base (CRC'd JSON)
//	<dir>/<table>/seg-%08d.seg    one file per sealed stream segment
//	<dir>/<table>/dict.log        append-only string dictionary
//	<dir>/<table>/wal.log         WAL covering rows past the last durable segment
//
// The durability contract: with SyncEvery=1 (the default) a batch is
// durable before Append acknowledges it; with SyncEvery=N an
// acknowledged batch may be lost in a crash only if it is among the
// most recent < N batches, and recovery always restores a clean batch
// PREFIX of the acknowledged sequence — never a torn or reordered one.
// See doc.go for the full recovery contract.

// ErrUnknownTable reports an operation on a table this store does not
// manage (e.g. one registered directly with the engine catalog).
var ErrUnknownTable = errors.New("store: table not managed by this store")

// ErrFailStopped marks errors caused by a table being (or becoming)
// fail-stopped. Callers distinguish "this table refuses writes until
// restart" (retryable against a recovered process, worth a 503) from
// bad input with errors.Is(err, ErrFailStopped).
var ErrFailStopped = errors.New("fail-stopped")

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("store: closed")

// Options configures a store.
type Options struct {
	// SyncEvery is the number of appended batches between WAL fsyncs.
	// 0 or 1 syncs every batch (acknowledged ⇒ durable); larger values
	// trade the durability window for ingest throughput.
	SyncEvery int
	// DisableWAL turns the tail WAL off entirely: only sealed segments
	// are durable, and a crash loses the in-memory tail. For bulk loads
	// that re-drive from source on failure.
	DisableWAL bool
	// MaxResidentBytes, when > 0, switches Open to OUT-OF-CORE serving:
	// instead of decoding every segment file into memory, recovery
	// validates only headers and zone maps, attaches segments as
	// faultable, and serves chunk reads through a store-wide buffer
	// pool bounded to (about) this many bytes of decoded chunks.
	// 0 (the default) keeps the fully resident behavior: all segments
	// decoded at Open, no pool, no faulting.
	MaxResidentBytes int64
	// Logf receives recovery and quarantine notices; defaults to
	// log.Printf.
	Logf func(format string, args ...any)
	// FS overrides the filesystem (fault-injection tests); defaults to
	// the real disk.
	FS FS
}

func (o *Options) fill() {
	if o.SyncEvery < 1 {
		o.SyncEvery = 1
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
}

// DB is a durable view over an engine.DB: appends WAL-then-publish,
// seals spill to checksummed segment files, retention is manifested
// before files are unlinked, and Open replays it all back. Query
// execution keeps reading the engine catalog directly — the store is
// an ingest-side wrapper, not a query path.
type DB struct {
	fs   FS
	dir  string
	opts Options
	eng  *engine.DB
	pool *bufferPool // non-nil iff MaxResidentBytes > 0 (out-of-core)

	mu      sync.Mutex
	tables  map[string]*tableStore
	skipped map[string]string // table dir -> reason it could not be recovered
	closed  bool
}

// tableStore is the durable state of one table. Its mutex serializes
// all mutating I/O for the table (append, seal spill, retention,
// close); engine reads stay lock-free on published versions.
type tableStore struct {
	mu      sync.Mutex
	name    string // lower-cased directory name
	dir     string
	schema  engine.Schema
	segBits uint

	dict          *storeDict
	dictPersisted map[int]int // per column: entries already in dict.log
	dictF         File
	walF          File // nil when DisableWAL
	walBatches    int  // batches appended since the last WAL fsync

	nextSeg     int // stream segment index of the next segment to spill
	base        int // manifested retention base (rows)
	failed      error
	quarantined []string
	gapSegments int // segments lost to quarantine at the last Open

	// loader serves this table's chunk faults in out-of-core mode; nil
	// for resident tables and tables created after Open. It is read
	// WITHOUT ts.mu on the fault path (see tableLoader's doc).
	loader *tableLoader
}

// Eng returns the underlying engine catalog, the handle query
// execution (internal/exec, internal/core) runs against.
func (s *DB) Eng() *engine.DB { return s.eng }

// Dir returns the store's root directory.
func (s *DB) Dir() string { return s.dir }

func (s *DB) table(name string) (*tableStore, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	ts, ok := s.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTable, name)
	}
	return ts, nil
}

// CreateTable creates a durable table: engine registration plus the
// on-disk directory, manifest, and empty dictionary/WAL files. segBits
// as in engine.NewTableSeg.
func (s *DB) CreateTable(name string, schema engine.Schema, segBits uint) error {
	t, err := engine.NewTableSeg(name, schema, segBits)
	if err != nil {
		return err
	}
	key := strings.ToLower(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.tables[key]; ok {
		return fmt.Errorf("store: table %q already exists", name)
	}
	dir := join(s.dir, key)
	if err := s.fs.MkdirAll(dir); err != nil {
		return err
	}
	m, err := encodeManifest(manifestFor(name, schema, segBits, 0))
	if err != nil {
		return err
	}
	if err := writeFileAtomic(s.fs, join(dir, manifestName), m); err != nil {
		return err
	}
	ts := &tableStore{
		name:          key,
		dir:           dir,
		schema:        schema.Clone(),
		segBits:       segBits,
		dict:          newStoreDict(),
		dictPersisted: make(map[int]int),
	}
	if ts.dictF, err = createLogFile(s.fs, join(dir, dictFileName), dictMagic); err != nil {
		return err
	}
	if !s.opts.DisableWAL {
		if ts.walF, err = createLogFile(s.fs, join(dir, walFileName), walMagic); err != nil {
			_ = ts.dictF.Close()
			return err
		}
	}
	if err := s.fs.SyncDir(dir); err != nil {
		return err
	}
	s.eng.Register(t)
	s.tables[key] = ts
	return nil
}

// createLogFile creates an append-only log with its magic durably on
// disk, returning the still-open handle for subsequent appends.
func createLogFile(fs FS, name, magic string) (File, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, err
	}
	return f, nil
}

// Append durably appends a batch: WAL first (fsync per SyncEvery),
// then publish through the engine, then spill any segment the batch
// sealed. The returned table is the published post-append version.
//
// On any I/O error the table goes FAIL-STOP: the error is returned,
// recorded, and every later Append/Retain on the table fails until the
// process restarts and recovers — acknowledging writes the disk may
// not hold would break the recovery contract. Reads keep serving the
// last published version.
func (s *DB) Append(name string, rows [][]engine.Value) (*engine.Table, error) {
	return s.AppendCtx(context.Background(), name, rows)
}

// AppendCtx is Append with a cancellation point strictly BEFORE the
// WAL write. Once the record is handed to the WAL the append runs to
// completion regardless of ctx: abandoning between the WAL write and
// the engine publish would leave the WAL ahead of the published table,
// and replay after restart would re-apply a batch the client was told
// failed — breaking the acked-batch-prefix recovery contract. A
// cancelled append therefore either happened entirely or not at all.
func (s *DB) AppendCtx(ctx context.Context, name string, rows [][]engine.Value) (*engine.Table, error) {
	ts, err := s.table(name)
	if err != nil {
		return nil, err
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.failed != nil {
		return nil, fmt.Errorf("store: table %s is %w: %w", ts.name, ErrFailStopped, ts.failed)
	}
	cur, err := s.eng.Table(name)
	if err != nil {
		return nil, err
	}
	coerced, err := cur.CoerceBatch(rows)
	if err != nil {
		return nil, err // bad input, not an I/O fault
	}
	// Last cancellation point: nothing has been written yet, so bailing
	// here leaves the table exactly as it was.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("store: append %s: %w", ts.name, err)
	}
	if ts.walF != nil {
		rec := encodeWALRecord(ts.schema, cur.Version(), coerced)
		if _, err := ts.walF.Write(rec); err != nil {
			return nil, ts.fail(fmt.Errorf("wal append: %w", err))
		}
		ts.walBatches++
		if ts.walBatches >= s.opts.SyncEvery {
			if err := ts.walF.Sync(); err != nil {
				return nil, ts.fail(fmt.Errorf("wal fsync: %w", err))
			}
			ts.walBatches = 0
		}
	}
	nt, err := s.eng.Append(name, coerced)
	if err != nil {
		// The WAL record is ahead of the published table; replay after
		// restart would re-apply it, so fail-stop here too.
		return nil, ts.fail(fmt.Errorf("engine append: %w", err))
	}
	if err := s.spillLocked(ts, nt); err != nil {
		return nil, ts.fail(err)
	}
	return nt, nil
}

func (ts *tableStore) fail(err error) error {
	ts.failed = err
	return fmt.Errorf("store: table %s %w: %w", ts.name, ErrFailStopped, err)
}

// spillLocked writes segment files for every sealed segment not yet on
// disk, then rewrites the WAL down to the current tail. Caller holds
// ts.mu. nt is the current published version.
func (s *DB) spillLocked(ts *tableStore, nt *engine.Table) error {
	first := nt.Base() >> ts.segBits
	nsealed, tailRows := nt.NumSegments()
	end := first + nsealed
	spilled := false
	for idx := ts.nextSeg; idx < end; idx++ {
		if nt.SegmentFaultable(idx - first) {
			// Out-of-core recovery attached this segment from its (valid,
			// durable) file behind a WAL-covered gap; nothing to rewrite.
			ts.nextSeg = idx + 1
			continue
		}
		image := encodeSegment(ts.schema, ts.segBits, idx, nt.SegmentCols(idx-first), ts.dict)
		// New dictionary entries must be durable BEFORE the segment
		// file that references them exists under its final name.
		if err := s.persistDictLocked(ts); err != nil {
			return fmt.Errorf("dict append: %w", err)
		}
		if err := writeFileAtomic(s.fs, join(ts.dir, segFileName(idx)), image); err != nil {
			return fmt.Errorf("segment %d: %w", idx, err)
		}
		ts.nextSeg = idx + 1
		spilled = true
	}
	if spilled && ts.walF != nil {
		if err := s.rewriteWALLocked(ts, nt, nsealed, tailRows); err != nil {
			return fmt.Errorf("wal rewrite: %w", err)
		}
	}
	return nil
}

// persistDictLocked appends and fsyncs dictionary entries interned
// since the last persist.
func (s *DB) persistDictLocked(ts *tableStore) error {
	var buf []byte
	cols := ts.dict.columns()
	counts := make(map[int]int, len(cols))
	for _, c := range cols {
		vals := ts.dict.snapshot(c, ts.dict.count(c))
		counts[c] = len(vals)
		for i := ts.dictPersisted[c]; i < len(vals); i++ {
			buf = append(buf, encodeDictRecord(c, vals[i])...)
		}
	}
	if len(buf) == 0 {
		return nil
	}
	if _, err := ts.dictF.Write(buf); err != nil {
		return err
	}
	if err := ts.dictF.Sync(); err != nil {
		return err
	}
	for _, c := range cols {
		ts.dictPersisted[c] = counts[c]
	}
	return nil
}

// rewriteWALLocked replaces wal.log with one covering only the current
// tail (the rows past the last durable segment). Runs strictly after
// the segment files' rename+dir-fsync: a crash in between leaves rows
// covered by both the old WAL and the new segment file, and recovery
// prefers the segment file.
func (s *DB) rewriteWALLocked(ts *tableStore, nt *engine.Table, nsealed, tailRows int) error {
	tailStart := nt.Base() + nsealed<<ts.segBits
	image := []byte(walMagic)
	if tailRows > 0 {
		rows := make([][]engine.Value, tailRows)
		local := tailStart - nt.Base()
		for i := 0; i < tailRows; i++ {
			row := make([]engine.Value, len(ts.schema))
			for c := range ts.schema {
				row[c] = nt.Value(local+i, c)
			}
			rows[i] = row
		}
		image = append(image, encodeWALRecord(ts.schema, tailStart, rows)...)
	}
	path := join(ts.dir, walFileName)
	tmp := path + ".tmp"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(image); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Close the old handle BEFORE the rename: a handle kept open across
	// a rename-over keeps appending to the orphaned inode. (During
	// recovery there is no handle yet.)
	if ts.walF != nil {
		err := ts.walF.Close()
		ts.walF = nil
		if err != nil {
			return err
		}
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		return err
	}
	if err := s.fs.SyncDir(ts.dir); err != nil {
		return err
	}
	nf, err := s.fs.OpenAppend(path)
	if err != nil {
		return err
	}
	ts.walF = nf
	ts.walBatches = 0
	return nil
}

// Retain applies a retention policy durably: the engine drops head
// segments, the manifest records the new base (the commit point), and
// only then are the dropped segment files unlinked. A crash between
// manifest and unlink leaves stale files below base, which the next
// Open removes.
func (s *DB) Retain(name string, pol engine.RetentionPolicy) (*engine.Table, engine.RetainStats, error) {
	return s.RetainCtx(context.Background(), name, pol)
}

// RetainCtx is Retain with a cancellation point strictly before the
// engine drop: once segments are dropped from the published version
// the manifest write and unlinks run to completion regardless of ctx,
// so the on-disk base can never lag a published drop.
func (s *DB) RetainCtx(ctx context.Context, name string, pol engine.RetentionPolicy) (*engine.Table, engine.RetainStats, error) {
	ts, err := s.table(name)
	if err != nil {
		return nil, engine.RetainStats{}, err
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.failed != nil {
		return nil, engine.RetainStats{}, fmt.Errorf("store: table %s is %w: %w", ts.name, ErrFailStopped, ts.failed)
	}
	if err := ctx.Err(); err != nil {
		return nil, engine.RetainStats{}, fmt.Errorf("store: retain %s: %w", ts.name, err)
	}
	nt, stats, err := s.eng.Retain(name, pol)
	if err != nil {
		return nil, stats, err
	}
	if stats.DroppedSegments == 0 {
		return nt, stats, nil
	}
	oldFirst := ts.base >> ts.segBits
	newFirst := nt.Base() >> ts.segBits
	m, err := encodeManifest(manifestFor(nt.Name(), ts.schema, ts.segBits, nt.Base()))
	if err != nil {
		return nil, stats, ts.fail(err)
	}
	if err := writeFileAtomic(s.fs, join(ts.dir, manifestName), m); err != nil {
		return nil, stats, ts.fail(fmt.Errorf("manifest: %w", err))
	}
	ts.base = nt.Base()
	for idx := oldFirst; idx < newFirst; idx++ {
		// The files may legitimately be absent (segment was never
		// spilled before being retained, or a previous crash already
		// lost the unlink); removal is advisory space reclamation.
		_ = s.fs.Remove(join(ts.dir, segFileName(idx)))
	}
	if ts.nextSeg < newFirst {
		ts.nextSeg = newFirst
	}
	if err := s.fs.SyncDir(ts.dir); err != nil {
		return nil, stats, ts.fail(fmt.Errorf("retention dir fsync: %w", err))
	}
	if ts.loader != nil {
		// Drop the retained segments' cached chunks. Pinned entries are
		// doomed, not freed — scans running on a pre-retention version
		// keep their slices until they release.
		s.pool.invalidateBelow(ts.name, newFirst)
	}
	return nt, stats, nil
}

// Close fsyncs and closes every table's open log handles. The store
// rejects further mutations; the first error is returned (and every
// error reported means an acknowledged-but-unsynced batch may not be
// durable — callers must surface it).
func (s *DB) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ts := s.tables[n]
		ts.mu.Lock()
		if ts.walF != nil {
			if ts.walBatches > 0 {
				keep(ts.walF.Sync())
			}
			keep(ts.walF.Close())
			ts.walF = nil
		}
		if ts.dictF != nil {
			keep(ts.dictF.Close())
			ts.dictF = nil
		}
		ts.mu.Unlock()
	}
	return first
}

// TableStats is the per-table durability report for /api/stats.
type TableStats struct {
	SealedOnDisk int      `json:"sealed_on_disk"` // segment files currently durable
	Base         int      `json:"base"`           // manifested retention base (rows)
	SyncPending  int      `json:"sync_pending"`   // acked batches not yet WAL-fsynced
	Quarantined  []string `json:"quarantined,omitempty"`
	GapSegments  int      `json:"gap_segments,omitempty"` // segments lost to quarantine at Open
	Failed       string   `json:"failed,omitempty"`       // non-empty: table is fail-stopped
}

// Stats reports the store's durability state: per-table file counts,
// quarantine lists and fail-stop status, plus table directories that
// could not be recovered at all.
type Stats struct {
	Dir     string                `json:"dir"`
	Tables  map[string]TableStats `json:"tables"`
	Skipped map[string]string     `json:"skipped,omitempty"`
	// Pool is the buffer pool snapshot; present only in out-of-core
	// mode (Options.MaxResidentBytes > 0).
	Pool *PoolStats `json:"pool,omitempty"`
}

// Stats snapshots the store's durability state.
func (s *DB) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{Dir: s.dir, Tables: make(map[string]TableStats, len(s.tables))}
	if len(s.skipped) > 0 {
		out.Skipped = make(map[string]string, len(s.skipped))
		for k, v := range s.skipped {
			out.Skipped[k] = v
		}
	}
	for n, ts := range s.tables {
		ts.mu.Lock()
		st := TableStats{
			SealedOnDisk: ts.nextSeg - ts.base>>ts.segBits,
			Base:         ts.base,
			SyncPending:  ts.walBatches,
			Quarantined:  append([]string(nil), ts.quarantined...),
			GapSegments:  ts.gapSegments,
		}
		if ts.failed != nil {
			st.Failed = ts.failed.Error()
		}
		loader := ts.loader
		ts.mu.Unlock()
		if loader != nil {
			// Fault-time quarantines live on the loader (it must not take
			// ts.mu from the read path); merge them into the report.
			st.Quarantined = append(st.Quarantined, loader.quarantineRecords()...)
		}
		out.Tables[n] = st
	}
	if s.pool != nil {
		ps := s.pool.stats()
		out.Pool = &ps
	}
	return out
}

// PoolPinned returns the number of currently pinned buffer-pool
// entries (0 when the store is resident) — the chaos harness's quiesce
// invariant: after every scan has finished, nothing may still be
// pinned.
func (s *DB) PoolPinned() int {
	if s.pool == nil {
		return 0
	}
	return s.pool.pinnedCount()
}
