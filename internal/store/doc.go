// Package store is the crash-safe durability layer under the engine's
// segmented tables: checksummed on-disk segment files for sealed
// segments, a write-ahead log for the growable tail, and a recovery
// path that rebuilds the exact acknowledged state after a crash.
//
// # Layout
//
// One directory per table (lower-cased name) under the store root:
//
//	manifest.json  CRC32C-wrapped JSON: name, schema, segment size, base
//	seg-%08d.seg   one immutable file per sealed stream segment
//	dict.log       append-only string dictionary (interning order)
//	wal.log        length-prefixed, CRC'd records for the tail rows
//
// Sealed segment files are written with the atomic protocol
// (write-temp → fsync → rename → dir-fsync) so each is either whole or
// absent; every section carries a CRC32C and the file ends with a
// whole-file checksum and footer magic. The manifest is replaced
// atomically and changes only at creation and retention.
//
// # Durability contract
//
// DB.Append logs the coerced batch to the WAL BEFORE publishing it to
// the engine. With Options.SyncEvery = 1 (default) the WAL is fsync'd
// per batch: an acknowledged Append is durable. With SyncEvery = N > 1
// a crash may lose up to the most recent N-1 acknowledged batches, but
// recovery always restores a clean batch PREFIX of the acknowledged
// sequence — never a torn, reordered, or partially applied batch.
// With Options.DisableWAL only sealed segments are durable and a crash
// loses the in-memory tail (bounded by one segment of rows).
//
// Any I/O error during Append or Retain fail-stops the table: the
// error is recorded, subsequent mutations are refused, and reads keep
// serving the last published version until a restart re-runs recovery.
// Acknowledging a write the disk may not hold would silently break the
// contract above, so the store refuses instead.
//
// # Recovery
//
// Open re-lists every table directory, removes interrupted temp files,
// verifies every checksum, and rebuilds each table from the longest
// recoverable SUFFIX of its stream: sealed segment files where they
// survive, WAL records where the crash hit between segment write and
// WAL rewrite, plus the WAL tail. A torn final WAL record is the crash
// point, not corruption — the file is truncated there. A segment file
// that fails validation (bit rot, truncation) is QUARANTINED: renamed
// to <name>.quarantined, logged, reported in Stats, never silently
// served and never deleted. Valid segments stranded below a
// quarantined gap stay on disk untouched and the served range starts
// above the gap (Stats.GapSegments reports the loss) — graceful
// degradation in preference to refusing to start. A corrupt manifest
// is rebuilt from the schema echo carried in every segment header;
// only a table with neither a manifest nor one valid segment header is
// skipped (Stats.Skipped).
//
// After the in-memory rebuild, Open finishes whatever the crash
// interrupted — re-spilling sealed segments whose files were lost and
// rewriting the WAL to exactly the current tail — so a second Open of
// the same directory performs no repair at all.
//
// # Fault injection
//
// All I/O goes through the FS interface. fault.go provides MemFS (an
// in-memory filesystem with an explicit crash-durability model: file
// contents survive only up to the last Sync plus an arbitrary torn
// prefix of later writes; namespace operations survive only after the
// parent directory's SyncDir, each with probability ½ on crash) and
// FaultFS (injects a short write, fsync error, or full crash at the
// n'th mutating operation). The recovery tests crash a workload at
// EVERY failpoint, reopen, and require the recovered table to match an
// oracle that holds exactly the acknowledged batches.
package store
