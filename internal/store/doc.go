// Package store is the crash-safe durability layer under the engine's
// segmented tables: checksummed on-disk segment files for sealed
// segments, a write-ahead log for the growable tail, and a recovery
// path that rebuilds the exact acknowledged state after a crash.
//
// # Layout
//
// One directory per table (lower-cased name) under the store root:
//
//	manifest.json  CRC32C-wrapped JSON: name, schema, segment size, base
//	seg-%08d.seg   one immutable file per sealed stream segment
//	dict.log       append-only string dictionary (interning order)
//	wal.log        length-prefixed, CRC'd records for the tail rows
//
// Sealed segment files are written with the atomic protocol
// (write-temp → fsync → rename → dir-fsync) so each is either whole or
// absent; every section carries a CRC32C and the file ends with a
// whole-file checksum and footer magic. The manifest is replaced
// atomically and changes only at creation and retention.
//
// # Durability contract
//
// DB.Append logs the coerced batch to the WAL BEFORE publishing it to
// the engine. With Options.SyncEvery = 1 (default) the WAL is fsync'd
// per batch: an acknowledged Append is durable. With SyncEvery = N > 1
// a crash may lose up to the most recent N-1 acknowledged batches, but
// recovery always restores a clean batch PREFIX of the acknowledged
// sequence — never a torn, reordered, or partially applied batch.
// With Options.DisableWAL only sealed segments are durable and a crash
// loses the in-memory tail (bounded by one segment of rows).
//
// Any I/O error during Append or Retain fail-stops the table: the
// error is recorded, subsequent mutations are refused, and reads keep
// serving the last published version until a restart re-runs recovery.
// Acknowledging a write the disk may not hold would silently break the
// contract above, so the store refuses instead.
//
// # Recovery
//
// Open re-lists every table directory, removes interrupted temp files,
// verifies every checksum, and rebuilds each table from the longest
// recoverable SUFFIX of its stream: sealed segment files where they
// survive, WAL records where the crash hit between segment write and
// WAL rewrite, plus the WAL tail. A torn final WAL record is the crash
// point, not corruption — the file is truncated there. A segment file
// that fails validation (bit rot, truncation) is QUARANTINED: renamed
// to <name>.quarantined, logged, reported in Stats, never silently
// served and never deleted. Valid segments stranded below a
// quarantined gap stay on disk untouched and the served range starts
// above the gap (Stats.GapSegments reports the loss) — graceful
// degradation in preference to refusing to start. A corrupt manifest
// is rebuilt from the schema echo carried in every segment header;
// only a table with neither a manifest nor one valid segment header is
// skipped (Stats.Skipped).
//
// After the in-memory rebuild, Open finishes whatever the crash
// interrupted — re-spilling sealed segments whose files were lost and
// rewriting the WAL to exactly the current tail — so a second Open of
// the same directory performs no repair at all.
//
// # Out-of-core serving
//
// With Options.MaxResidentBytes > 0, Open stops decoding segment
// files into memory. Recovery validates each file's header and zone
// maps with a handful of small reads, attaches the segment to the
// engine table as FAULTABLE, and serves chunk reads on demand through
// a store-wide buffer pool bounded to (about) MaxResidentBytes of
// decoded chunks. The contract, bottom to top:
//
//   - Pin/unpin. A reader obtains a chunk via the engine's
//     FloatView.PinSeg / DictView.PinSeg (or per-row reads, which pin
//     transiently). A pinned chunk cannot be evicted; the release
//     func MUST be called exactly once, on every path — scans hold at
//     most one pin per column cursor and release via defer, so errors
//     and cancellation cannot leak pins. At quiesce the pool's pinned
//     count is zero (asserted by the chaos soak and the cancellation
//     matrix).
//   - Faults verify. A chunk load re-reads the column section from
//     the segment file and verifies its CRC then; a mismatch
//     quarantines the file (same rename + log + Stats path as at
//     Open) and surfaces as a query error — never as wrong data.
//   - Zone maps prune. Seal time writes per-column min/max, NULL/NaN
//     counts and a dictionary-code presence bitmap; scans consult
//     them to skip provably empty segments without touching disk. A
//     damaged zone block is ignored with a logged reason (the segment
//     just scans) — zone maps are an optimization and may never
//     change results.
//   - Eviction is LRU over unpinned chunks; the pool is the ONLY
//     chunk cache, so resident bytes stay bounded regardless of table
//     size (the memcap CI job runs the suite under GOMEMLIMIT).
//
// Results are bit-identical to a fully resident open; the randomized
// differential tests drive both through eviction thrash to pin that.
//
// # Format versions
//
// Segment files and manifests carry formatVersion 2: v2 appends a
// checksummed zone-map block between the header and the column
// sections. The compatibility rule: the file MAGIC names the kind and
// never changes; the header's formatVersion names the LAYOUT and may
// grow. Readers accept every version they know (1 and 2 — v1 files
// from older directories open fine, with no zones); writers always
// write the newest. A version bump is required whenever the byte
// layout changes; reusing a version number for a different layout is
// forbidden — checksums detect corruption, not format confusion.
//
// # Fault injection
//
// All I/O goes through the FS interface. fault.go provides MemFS (an
// in-memory filesystem with an explicit crash-durability model: file
// contents survive only up to the last Sync plus an arbitrary torn
// prefix of later writes; namespace operations survive only after the
// parent directory's SyncDir, each with probability ½ on crash) and
// FaultFS (injects a short write, fsync error, or full crash at the
// n'th mutating operation). The recovery tests crash a workload at
// EVERY failpoint, reopen, and require the recovered table to match an
// oracle that holds exactly the acknowledged batches.
package store
