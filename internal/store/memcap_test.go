package store

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/sqlparse"
)

// TestOutOfCoreBoundedHeap opens a table more than 10x the buffer pool
// and scans it repeatedly: the pool must stay at or under its budget,
// and the process heap must grow by far less than the decoded table —
// the point of out-of-core serving. The CI memory-capped job runs this
// under GOMEMLIMIT, where a regression to eager residency doesn't just
// fail the growth assertion, it sends the GC into a visible thrash.
func TestOutOfCoreBoundedHeap(t *testing.T) {
	dir := t.TempDir()
	quiet := func(string, ...any) {}
	const (
		segBits    = 12 // 4096-row segments
		nrows      = 120_000
		cacheBytes = 256 << 10
	)
	schema := engine.NewSchema("k", engine.TInt, "v", engine.TFloat, "w", engine.TFloat, "s", engine.TString)

	st, err := Open(dir, Options{SyncEvery: 256, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable("big", schema, segBits); err != nil {
		t.Fatal(err)
	}
	strs := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for lo := 0; lo < nrows; lo += 4096 {
		rows := make([][]engine.Value, 4096)
		for i := range rows {
			r := lo + i
			rows[i] = []engine.Value{
				engine.NewInt(int64(r)),
				engine.NewFloat(float64(r%977) * 0.25),
				engine.NewFloat(float64(r%131) * 0.5),
				engine.NewString(strs[r%len(strs)]),
			}
		}
		if _, err := st.Append("big", rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Decoded footprint if this table were resident: per 4096-row
	// segment, three 8-byte columns and one 4-byte code column plus
	// null words — far more than 10x the pool.
	const decodedBytes = nrows * 29
	if decodedBytes < 10*cacheBytes {
		t.Fatalf("fixture too small: %d decoded vs %d cache", decodedBytes, cacheBytes)
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	st, err = Open(dir, Options{SyncEvery: 256, Logf: quiet, MaxResidentBytes: cacheBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tbl, err := st.Eng().Table("big")
	if err != nil {
		t.Fatal(err)
	}
	for i, sql := range []string{
		"SELECT s, sum(v) AS a, count(*) AS n FROM big GROUP BY s",
		"SELECT s, avg(w) AS a FROM big WHERE v >= 1 GROUP BY s",
		"SELECT s, max(v) AS m FROM big GROUP BY s",
	} {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec.RunOn(tbl, stmt)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res.Table.NumRows() != len(strs) {
			t.Fatalf("query %d: %d groups, want %d", i, res.Table.NumRows(), len(strs))
		}
	}

	stats := st.Stats()
	if stats.Pool == nil {
		t.Fatal("no pool stats")
	}
	if stats.Pool.UsedBytes > cacheBytes {
		t.Fatalf("pool over budget at quiesce: %+v", *stats.Pool)
	}
	if stats.Pool.Pinned != 0 {
		t.Fatalf("%d chunks pinned at quiesce", stats.Pool.Pinned)
	}
	if stats.Pool.Evictions == 0 || stats.Pool.Misses == 0 {
		t.Fatalf("scan over a 10x-cache table never thrashed the pool: %+v", *stats.Pool)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if growth > decodedBytes/2 {
		t.Fatalf("heap grew %d bytes serving a %d-byte table through a %d-byte pool — not out-of-core",
			growth, decodedBytes, cacheBytes)
	}
	t.Log(fmt.Sprintf("heap growth %d bytes for %d decoded bytes behind a %d-byte pool (pool: %+v)",
		growth, decodedBytes, cacheBytes, *stats.Pool))
}
