package store

import (
	"fmt"

	"repro/internal/engine"
)

// Write-ahead log for the growable tail. Sealed segments are durable
// as whole files; every row NOT yet covered by a durable segment file
// lives in wal.log, one length-prefixed CRC'd record per appended
// batch:
//
//	magic "DWWAL01\n"
//	record: u32 bodyLen | body | u32 crc(body)
//	  body: u64 startRow (stream row id of the record's first row),
//	  u32 nrows, then per row per column: u8 tag (0 = NULL, 1 = value)
//	  followed for non-NULL cells by the fixed 8-byte payload
//	  (int64 / IEEE float bits) or, for strings, u32 len + bytes
//	  inline. The WAL deliberately does NOT use the dictionary: a WAL
//	  record must be replayable even when the dict file lost its
//	  unsynced tail in the same crash.
//
// Records hold COERCED rows (engine.Table.CoerceBatch runs before
// logging); coercion is deterministic, so replay reproduces the exact
// cells the engine acknowledged. Recovery parses records until the
// first one that is short, misframed, or fails its CRC — a torn final
// record is not corruption, it is the crash point — and truncates the
// file there.
//
// After a seal makes rows durable in a segment file, the WAL is
// REWRITTEN (write-temp → fsync → rename) to a single record holding
// only the current tail, so it stays bounded by one segment of rows.
// The rewrite happens strictly after the segment rename + dir fsync;
// a crash between the two leaves rows covered twice (segment file AND
// wal), which recovery resolves in the segment file's favor.

// walRecord is one decoded WAL record.
type walRecord struct {
	startRow int
	rows     [][]engine.Value
}

// encodeWALRecord frames one acknowledged batch.
func encodeWALRecord(schema engine.Schema, startRow int, rows [][]engine.Value) []byte {
	body := appendU64(nil, uint64(startRow))
	body = appendU32(body, uint32(len(rows)))
	for _, row := range rows {
		for c, col := range schema {
			v := row[c]
			if v.IsNull() {
				body = append(body, 0)
				continue
			}
			body = append(body, 1)
			if col.Type == engine.TString {
				body = appendU32(body, uint32(len(v.S)))
				body = append(body, v.S...)
			} else {
				body = appendU64(body, cellBits(v))
			}
		}
	}
	out := appendU32(nil, uint32(len(body)))
	out = append(out, body...)
	return appendU32(out, crc(body))
}

// decodeWAL parses a wal.log image. It returns the valid records in
// file order and goodOff, the byte offset just past the last valid
// record — the size recovery truncates the file to. A missing or
// mangled leading magic yields zero records and goodOff 0 (the file is
// rewritten from scratch). Misordered startRows stop the parse at the
// offending record: records are appended in stream order, so an
// out-of-order id means the framing drifted even though a CRC
// happened to pass.
func decodeWAL(data []byte, schema engine.Schema) (recs []walRecord, goodOff int) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return nil, 0
	}
	off := len(walMagic)
	nextRow := -1
	for off < len(data) {
		r := &byteReader{b: data, off: off}
		bodyLen := r.u32()
		body := r.take(int(bodyLen))
		bodyCRC := r.u32()
		if !r.ok() || crc(body) != bodyCRC {
			return recs, off
		}
		rec, err := decodeWALBody(body, schema)
		if err != nil {
			return recs, off
		}
		if nextRow >= 0 && rec.startRow != nextRow {
			return recs, off
		}
		nextRow = rec.startRow + len(rec.rows)
		recs = append(recs, rec)
		off = r.off
	}
	return recs, off
}

func decodeWALBody(body []byte, schema engine.Schema) (walRecord, error) {
	r := &byteReader{b: body}
	start := r.u64()
	nrows := r.u32()
	if !r.ok() || nrows > uint32(len(body)) { // each row costs ≥1 byte/col ≥ 1 byte
		return walRecord{}, fmt.Errorf("implausible row count %d", nrows)
	}
	rows := make([][]engine.Value, 0, nrows)
	for i := uint32(0); i < nrows; i++ {
		row := make([]engine.Value, len(schema))
		for c, col := range schema {
			switch tag := r.u8(); tag {
			case 0:
				// NULL: zero Value.
			case 1:
				if col.Type == engine.TString {
					slen := r.u32()
					s := r.take(int(slen))
					if !r.ok() {
						return walRecord{}, fmt.Errorf("truncated string cell")
					}
					row[c] = engine.Value{T: engine.TString, S: string(s)}
				} else {
					row[c] = cellFromBits(col.Type, r.u64())
				}
			default:
				return walRecord{}, fmt.Errorf("bad cell tag %d", tag)
			}
		}
		if !r.ok() {
			return walRecord{}, fmt.Errorf("truncated record body")
		}
		rows = append(rows, row)
	}
	if r.remaining() != 0 {
		return walRecord{}, fmt.Errorf("%d trailing bytes in record", r.remaining())
	}
	return walRecord{startRow: int(start), rows: rows}, nil
}
