package store

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/testgen"
)

// Corruption (a flipped bit on the platter — NOT a torn write) must be
// DETECTED by a checksum and answered with quarantine + suffix
// serving, never with silently wrong query results and never by
// refusing to start.

// buildFixture creates a store with 4 sealed segments (64 rows each)
// plus a 10-row WAL tail, closed cleanly. Deterministic per seed.
func buildFixture(t *testing.T) (*MemFS, [][]engine.Value) {
	t.Helper()
	mem := NewMemFS()
	st, err := Open("/db", quietOpts(mem, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable("p", testgen.Schema(), engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	var oracle [][]engine.Value
	for i := 0; i < 4; i++ {
		batch := testgen.Batch(rng, 64)
		if _, err := st.Append("p", batch); err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, batch...)
	}
	batch := testgen.Batch(rng, 10)
	if _, err := st.Append("p", batch); err != nil {
		t.Fatal(err)
	}
	oracle = append(oracle, batch...)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return mem, oracle
}

func reopenFixture(t *testing.T, mem *MemFS) (*DB, *engine.Table, TableStats) {
	t.Helper()
	st, err := Open("/db", quietOpts(mem, 1))
	if err != nil {
		t.Fatalf("corrupted store refused to open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	tab, err := st.Eng().Table("p")
	if err != nil {
		t.Fatalf("corrupted store lost the table entirely: %v", err)
	}
	return st, tab, st.Stats().Tables["p"]
}

// TestCorruptMidSegment flips one bit per section of an interior
// segment file: every flavor must be caught and quarantined, and the
// table served from the suffix above the damage.
func TestCorruptMidSegment(t *testing.T) {
	const victim = "/db/p/seg-00000002.seg"
	probe, _ := buildFixture(t)
	size, err := probe.FileSize(victim)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]int64{
		"header":      10,       // inside the headerLen/header bytes
		"column-data": size / 2, // inside some column section
		"file-crc":    size - 10,
		"end-magic":   size - 3,
	}
	for name, off := range cases {
		t.Run(name, func(t *testing.T) {
			mem, oracle := buildFixture(t)
			if err := mem.FlipBit(victim, off, uint(off)%8); err != nil {
				t.Fatal(err)
			}
			_, tab, ts := reopenFixture(t, mem)
			if len(ts.Quarantined) != 1 || ts.Quarantined[0] != "seg-00000002.seg" {
				t.Fatalf("quarantined %v, want exactly seg-00000002.seg", ts.Quarantined)
			}
			if ts.GapSegments != 3 {
				t.Fatalf("gap of %d segments reported, want 3", ts.GapSegments)
			}
			if tab.Base() != 192 || tab.Version() != 266 {
				t.Fatalf("served base/version %d/%d, want the 192/266 suffix", tab.Base(), tab.Version())
			}
			requireRowsMatch(t, tab, oracle)
			// The damaged file is set aside, not deleted; the stranded
			// valid segments below it are left untouched.
			var aside, stranded bool
			for _, f := range mem.Files() {
				if strings.HasSuffix(f, "seg-00000002.seg.quarantined") {
					aside = true
				}
				if strings.HasSuffix(f, "seg-00000000.seg") {
					stranded = true
				}
				if f == victim {
					t.Fatalf("damaged file still present under its live name")
				}
			}
			if !aside || !stranded {
				t.Fatalf("quarantine was destructive: aside=%v stranded-kept=%v", aside, stranded)
			}
		})
	}
}

// TestCorruptNewestSegment damages the newest sealed segment: the
// served suffix is then just the WAL tail.
func TestCorruptNewestSegment(t *testing.T) {
	mem, oracle := buildFixture(t)
	if err := mem.FlipBit("/db/p/seg-00000003.seg", 200, 5); err != nil {
		t.Fatal(err)
	}
	_, tab, ts := reopenFixture(t, mem)
	if len(ts.Quarantined) != 1 || ts.GapSegments != 4 {
		t.Fatalf("quarantined=%v gap=%d, want 1 file and a 4-segment gap", ts.Quarantined, ts.GapSegments)
	}
	if tab.Base() != 256 || tab.Version() != 266 {
		t.Fatalf("served base/version %d/%d, want tail-only 256/266", tab.Base(), tab.Version())
	}
	requireRowsMatch(t, tab, oracle)
}

// TestCorruptManifest flips a bit in the manifest: recovery rebuilds
// it from the schema echo in a segment header and loses nothing.
func TestCorruptManifest(t *testing.T) {
	mem, oracle := buildFixture(t)
	if err := mem.FlipBit("/db/p/manifest.json", 30, 2); err != nil {
		t.Fatal(err)
	}
	_, tab, ts := reopenFixture(t, mem)
	if len(ts.Quarantined) != 0 || ts.GapSegments != 0 {
		t.Fatalf("manifest rebuild quarantined data: %+v", ts)
	}
	if tab.Base() != 0 || tab.Version() != 266 {
		t.Fatalf("rebuilt table base/version %d/%d, want 0/266", tab.Base(), tab.Version())
	}
	requireRowsMatch(t, tab, oracle)
}

// TestCorruptWAL flips a bit in the WAL tail record: indistinguishable
// from a torn write, so the tail is truncated away — sealed data stays.
func TestCorruptWAL(t *testing.T) {
	mem, oracle := buildFixture(t)
	if err := mem.FlipBit("/db/p/wal.log", int64(len(walMagic))+6, 1); err != nil {
		t.Fatal(err)
	}
	_, tab, ts := reopenFixture(t, mem)
	if len(ts.Quarantined) != 0 || ts.GapSegments != 0 {
		t.Fatalf("wal damage quarantined sealed data: %+v", ts)
	}
	if tab.Base() != 0 || tab.Version() != 256 {
		t.Fatalf("base/version %d/%d, want sealed prefix 0/256", tab.Base(), tab.Version())
	}
	requireRowsMatch(t, tab, oracle)
}

// TestCorruptDict damages the dictionary. Record damage truncates the
// dictionary, and every segment whose header demands more entries than
// survive must quarantine itself rather than decode strings wrongly;
// magic damage quarantines the whole dictionary file. Either way the
// WAL tail (strings inline) still serves.
func TestCorruptDict(t *testing.T) {
	for name, off := range map[string]int64{"record": int64(len(dictMagic)) + 3, "magic": 2} {
		t.Run(name, func(t *testing.T) {
			mem, oracle := buildFixture(t)
			if err := mem.FlipBit("/db/p/dict.log", off, 4); err != nil {
				t.Fatal(err)
			}
			_, tab, ts := reopenFixture(t, mem)
			nq := len(ts.Quarantined)
			if name == "record" && nq != 4 || name == "magic" && nq != 5 {
				t.Fatalf("%s damage quarantined %v", name, ts.Quarantined)
			}
			if tab.Base() != 256 || tab.Version() != 266 {
				t.Fatalf("base/version %d/%d, want tail-only 256/266", tab.Base(), tab.Version())
			}
			requireRowsMatch(t, tab, oracle)
		})
	}
}
