package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"sync"

	"repro/internal/engine"
)

// On-disk formats. All integers are little-endian and fixed-width; all
// checksums are CRC32-C (Castagnoli). Three file kinds share the
// discipline "every byte is covered by a checksum, every file ends in
// a recognizable footer":
//
// Sealed segment file (seg-<idx>.seg), written once via
// write-temp → fsync → rename → dir-fsync so it is either whole or
// absent:
//
//	magic "DWSEG01\n"
//	u32 headerLen | header | u32 crc(header)
//	  header: u32 formatVersion, u32 segBits, u64 segIdx (stream
//	  segment index), u32 nrows, u32 ncols, then per column
//	  {u16 nameLen, name, u8 type, u32 dictHW} — the schema echo lets
//	  recovery rebuild a lost manifest, and dictHW is the number of
//	  dictionary entries (per column) the code section requires.
//	[format >= 2] u32 zoneLen | zoneBody | u32 crc(zoneBody)
//	  zoneBody: zoneRecBytes per column {u64 sectionOff (absolute file
//	  offset of the column's u32 length prefix), u32 sectionLen,
//	  u64 minBits, u64 maxBits (IEEE bits of the non-NULL non-NaN
//	  range), u32 nullCount, u32 nanCount, u32 flags (bit0 = range
//	  valid, bit1 = presence valid), 32 bytes presence bitmap (bit
//	  code%256 set iff the dict code occurs)} — the zone maps that let
//	  scans prune whole segments without reading the sections, with
//	  their own CRC so a damaged zone block degrades to "no pruning"
//	  instead of quarantining the (still checksummed) data sections.
//	per column: u32 sectionLen | section | u32 crc(section)
//	  section: NULL bitmap (segRows/64 u64 words, bit i = row i NULL),
//	  then segRows fixed-width cells: int64 payload for bool/int/time,
//	  IEEE bits for float, i32 dictionary code (-1 = NULL) for string.
//	u32 crc(whole file so far) | magic "DWSEGEND"
//
// Version compatibility rule: the file magic identifies the KIND, the
// header's formatVersion the LAYOUT. Readers accept every version they
// know (currently 1 = no zone block, 2 = zone block present); writers
// always write the newest. Old directories therefore keep opening
// after an upgrade — their segments simply carry no zone maps until
// retention ages them out.
//
// Dictionary file (dict.log), append-only, one record per newly
// interned string, fsync'd before any segment file that references it:
//
//	magic "DWDIC01\n"
//	record: u16 col | u32 strLen | bytes | u32 crc(record body)
//
// WAL (wal.log): see wal.go. Manifest (manifest.json): JSON payload
// wrapped with a crc32c of its raw bytes, replaced atomically.

const (
	// formatVersion is what new files are written as; formatVersionV1 is
	// the oldest layout still accepted on read (see the compatibility
	// rule above).
	formatVersion   = 2
	formatVersionV1 = 1

	// zoneRecBytes is the fixed size of one column's zone record inside
	// the v2 zone block: 8 (sectionOff) + 4 (sectionLen) + 8 + 8
	// (min/max bits) + 4 + 4 (null/nan counts) + 4 (flags) + 32
	// (presence bitmap).
	zoneRecBytes = 72

	zoneFlagRange    = 1 << 0
	zoneFlagPresence = 1 << 1

	segMagic    = "DWSEG01\n"
	segEndMagic = "DWSEGEND"
	dictMagic   = "DWDIC01\n"
	walMagic    = "DWWAL01\n"

	manifestName = "manifest.json"
	dictFileName = "dict.log"
	walFileName  = "wal.log"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crc(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// segFileName names sealed stream segment idx.
func segFileName(idx int) string { return fmt.Sprintf("seg-%08d.seg", idx) }

// parseSegFileName extracts the stream segment index, or -1.
func parseSegFileName(name string) int {
	var idx int
	if n, err := fmt.Sscanf(name, "seg-%d.seg", &idx); n == 1 && err == nil && name == segFileName(idx) {
		return idx
	}
	return -1
}

// ---- little-endian append/read helpers ----

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// byteReader is a bounds-checked sequential reader over one buffer;
// after any out-of-bounds read ok() is false and every later read
// returns zero, so decoders can validate once at the end.
type byteReader struct {
	b    []byte
	off  int
	fail bool
}

func (r *byteReader) ok() bool       { return !r.fail }
func (r *byteReader) remaining() int { return len(r.b) - r.off }
func (r *byteReader) take(n int) []byte {
	if r.fail || n < 0 || r.off+n > len(r.b) {
		r.fail = true
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}
func (r *byteReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (r *byteReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}
func (r *byteReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// ---- store-level dictionary ----

// storeDict is the persisted family dictionary: per string column, the
// distinct strings in on-disk interning order. It is the store's OWN
// mapping — engine dictionary codes are process-local and never touch
// disk (except in out-of-core mode, where the engine's dictionary is
// PRELOADED from this one so the on-disk code sections can be served
// directly) — and, like the engine's, it only ever grows: strings
// whose rows were all dropped by retention keep their codes, so old
// segment files never need rewriting.
//
// The mutex serializes growth (interning during a seal, under the
// table lock) against the buffer pool's concurrent fault-time reads;
// values already interned are immutable, so a snapshot is a bounded
// slice header.
type storeDict struct {
	mu   sync.Mutex
	cols map[int]*colDict
}

type colDict struct {
	values []string
	byStr  map[string]int32
}

func newStoreDict() *storeDict { return &storeDict{cols: make(map[int]*colDict)} }

func (d *storeDict) col(c int) *colDict {
	cd := d.cols[c]
	if cd == nil {
		cd = &colDict{byStr: make(map[string]int32)}
		d.cols[c] = cd
	}
	return cd
}

// intern returns s's code in column c, appending it if new.
func (d *storeDict) intern(c int, s string) int32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	cd := d.col(c)
	if code, ok := cd.byStr[s]; ok {
		return code
	}
	code := int32(len(cd.values))
	cd.byStr[s] = code
	cd.values = append(cd.values, s)
	return code
}

// count returns the number of interned strings of column c.
func (d *storeDict) count(c int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cd := d.cols[c]; cd != nil {
		return len(cd.values)
	}
	return 0
}

// lookup returns the string for code in column c.
func (d *storeDict) lookup(c int, code int32) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cd := d.cols[c]
	if cd == nil || code < 0 || int(code) >= len(cd.values) {
		return "", false
	}
	return cd.values[code], true
}

// columns returns the sorted column indexes that have any entries.
func (d *storeDict) columns() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	cols := make([]int, 0, len(d.cols))
	for c := range d.cols {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	return cols
}

// snapshot returns the first hw interned strings of column c — an
// immutable prefix (the values list is append-only), safe to read
// after the lock drops.
func (d *storeDict) snapshot(c, hw int) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	cd := d.cols[c]
	if cd == nil {
		return nil
	}
	if hw > len(cd.values) {
		hw = len(cd.values)
	}
	return cd.values[:hw:hw]
}

// encodeDictRecord frames one new dictionary entry.
func encodeDictRecord(col int, s string) []byte {
	body := appendU16(nil, uint16(col))
	body = appendU32(body, uint32(len(s)))
	body = append(body, s...)
	return appendU32(body, crc(body))
}

// decodeDict parses a dict.log image. It returns the per-column string
// lists, the byte offset of the first undecodable record (== len(data)
// when the file is wholly valid), and whether the leading magic was
// valid at all. Parsing stops at the first bad record: everything
// after an undetected-length corruption is unreliable, and segment
// files whose dictHW exceeds the surviving entry count are quarantined
// by the caller.
func decodeDict(data []byte) (dict *storeDict, goodOff int, magicOK bool) {
	dict = newStoreDict()
	if len(data) < len(dictMagic) || string(data[:len(dictMagic)]) != dictMagic {
		return dict, 0, false
	}
	off := len(dictMagic)
	for off < len(data) {
		r := &byteReader{b: data, off: off}
		col := r.u16()
		slen := r.u32()
		str := r.take(int(slen))
		recCRC := r.u32()
		if !r.ok() || crc(data[off:r.off-4]) != recCRC {
			return dict, off, true
		}
		dict.intern(int(col), string(str))
		off = r.off
	}
	return dict, off, true
}

// ---- cell codecs shared by segment and WAL encodings ----

// cellBits returns the fixed-width payload of a non-NULL numeric cell.
func cellBits(v engine.Value) uint64 {
	if v.T == engine.TFloat {
		return math.Float64bits(v.F)
	}
	return uint64(v.I)
}

// cellFromBits rebuilds a non-NULL cell of type t from its payload.
func cellFromBits(t engine.Type, bits uint64) engine.Value {
	if t == engine.TFloat {
		return engine.Value{T: engine.TFloat, F: math.Float64frombits(bits)}
	}
	return engine.Value{T: t, I: int64(bits)}
}

// ---- sealed segment files ----

// cellWidth returns the fixed byte width of one cell of type t.
func cellWidth(t engine.Type) int {
	if t == engine.TString {
		return 4
	}
	return 8
}

// sectionBytes returns the exact section length of one column — fully
// determined by the schema and segment geometry, which is what lets
// the lazy open path compute every section offset without reading any
// section.
func sectionBytes(t engine.Type, segBits uint) int {
	segRows := 1 << segBits
	return segRows/64*8 + segRows*cellWidth(t)
}

// segLayout returns the absolute offset of column 0's length prefix
// for a given version and header length, and the total file size.
func segLayout(version int, headerLen int, schema engine.Schema, segBits uint) (secBase, fileSize int) {
	secBase = len(segMagic) + 4 + headerLen + 4
	if version >= formatVersion {
		secBase += 4 + zoneRecBytes*len(schema) + 4
	}
	fileSize = secBase
	for _, col := range schema {
		fileSize += 4 + sectionBytes(col.Type, segBits) + 4
	}
	return secBase, fileSize + 4 + len(segEndMagic)
}

// computeZone builds one column's zone map from its boxed values (and
// interned codes for string columns).
func computeZone(col engine.Column, vals []engine.Value, codes []int32) engine.ZoneInfo {
	z := engine.ZoneInfo{Rows: len(vals)}
	if col.Type == engine.TString {
		z.HasPresence = true
		for i, v := range vals {
			if v.IsNull() {
				z.NullCount++
				continue
			}
			code := uint32(codes[i]) & 255
			z.Presence[code>>6] |= 1 << (code & 63)
		}
		return z
	}
	for _, v := range vals {
		if v.IsNull() {
			z.NullCount++
			continue
		}
		f := v.Float()
		if math.IsNaN(f) {
			z.NaNCount++
			continue
		}
		if f == 0 {
			// Canonicalize -0.0 to +0.0, mirroring Value.Key(): the bounds
			// round-trip through Float64bits, and engine semantics treat
			// the two zeros as one value — without this, segments holding
			// identical data would serialize different Min/Max bit
			// patterns depending on which zero was seen first, and any
			// future bit-level bound comparison would misjudge a segment
			// whose only match for x >= 0 is a -0.0 stored as Min.
			f = 0
		}
		if !z.HasRange {
			z.Min, z.Max = f, f
			z.HasRange = true
		} else {
			if f < z.Min {
				z.Min = f
			}
			if f > z.Max {
				z.Max = f
			}
		}
	}
	return z
}

// appendZoneRec serializes one zone record (zoneRecBytes bytes).
func appendZoneRec(b []byte, secOff uint64, secLen uint32, z engine.ZoneInfo) []byte {
	b = appendU64(b, secOff)
	b = appendU32(b, secLen)
	b = appendU64(b, math.Float64bits(z.Min))
	b = appendU64(b, math.Float64bits(z.Max))
	b = appendU32(b, uint32(z.NullCount))
	b = appendU32(b, uint32(z.NaNCount))
	var flags uint32
	if z.HasRange {
		flags |= zoneFlagRange
	}
	if z.HasPresence {
		flags |= zoneFlagPresence
	}
	b = appendU32(b, flags)
	for _, w := range z.Presence {
		b = appendU64(b, w)
	}
	return b
}

// readZoneRec parses one zone record.
func readZoneRec(r *byteReader, segRows int) (secOff uint64, secLen uint32, z engine.ZoneInfo) {
	secOff = r.u64()
	secLen = r.u32()
	z.Min = math.Float64frombits(r.u64())
	z.Max = math.Float64frombits(r.u64())
	z.NullCount = int(r.u32())
	z.NaNCount = int(r.u32())
	flags := r.u32()
	z.HasRange = flags&zoneFlagRange != 0
	z.HasPresence = flags&zoneFlagPresence != 0
	for i := range z.Presence {
		z.Presence[i] = r.u64()
	}
	z.Rows = segRows
	return secOff, secLen, z
}

// encodeSegment serializes one sealed segment (cols from
// engine.Table.SegmentCols) into a whole-file byte image at the
// current format version. String cells are interned into dict; the
// caller persists dict's new entries BEFORE writing the returned
// image, so a durable segment never references a lost dictionary
// entry.
func encodeSegment(schema engine.Schema, segBits uint, segIdx int, cols [][]engine.Value, dict *storeDict) []byte {
	return encodeSegmentV(formatVersion, schema, segBits, segIdx, cols, dict)
}

// encodeSegmentV is encodeSegment at an explicit format version —
// version 1 (no zone block) exists for the backward-compat fixtures
// and the zone-map benchmark baseline.
func encodeSegmentV(version int, schema engine.Schema, segBits uint, segIdx int, cols [][]engine.Value, dict *storeDict) []byte {
	segRows := 1 << segBits
	segWords := segRows / 64

	// Intern all strings first so the header's dictHW is final.
	codes := make(map[int][]int32)
	for c, col := range schema {
		if col.Type != engine.TString {
			continue
		}
		cc := make([]int32, segRows)
		for i, v := range cols[c] {
			if v.IsNull() {
				cc[i] = -1
			} else {
				cc[i] = dict.intern(c, v.S)
			}
		}
		codes[c] = cc
	}

	header := appendU32(nil, uint32(version))
	header = appendU32(header, uint32(segBits))
	header = appendU64(header, uint64(segIdx))
	header = appendU32(header, uint32(segRows))
	header = appendU32(header, uint32(len(schema)))
	for c, col := range schema {
		header = appendU16(header, uint16(len(col.Name)))
		header = append(header, col.Name...)
		header = append(header, byte(col.Type))
		hw := 0
		if col.Type == engine.TString {
			hw = dict.count(c)
		}
		header = appendU32(header, uint32(hw))
	}

	out := []byte(segMagic)
	out = appendU32(out, uint32(len(header)))
	out = append(out, header...)
	out = appendU32(out, crc(header))

	if version >= formatVersion {
		// Zone block: per-column zone maps plus the absolute section
		// offsets (derivable from the schema, but echoed here so readers
		// can cross-check the layout they computed).
		secBase, _ := segLayout(version, len(header), schema, segBits)
		zoneBody := make([]byte, 0, zoneRecBytes*len(schema))
		off := secBase
		for c, col := range schema {
			secLen := sectionBytes(col.Type, segBits)
			z := computeZone(col, cols[c], codes[c])
			zoneBody = appendZoneRec(zoneBody, uint64(off), uint32(secLen), z)
			off += 4 + secLen + 4
		}
		out = appendU32(out, uint32(len(zoneBody)))
		out = append(out, zoneBody...)
		out = appendU32(out, crc(zoneBody))
	}

	for c, col := range schema {
		// NULL bitmap words (make zeroes them), then fixed-width cells.
		section := make([]byte, segWords*8, segWords*8+segRows*8)
		for i, v := range cols[c] {
			if v.IsNull() {
				w := i >> 6
				bit := uint(i) & 63
				binary.LittleEndian.PutUint64(section[w*8:], binary.LittleEndian.Uint64(section[w*8:])|1<<bit)
			}
		}
		// Cells.
		if col.Type == engine.TString {
			for _, code := range codes[c] {
				section = appendU32(section, uint32(code))
			}
		} else {
			for _, v := range cols[c] {
				if v.IsNull() {
					section = appendU64(section, 0)
				} else {
					section = appendU64(section, cellBits(v))
				}
			}
		}
		out = appendU32(out, uint32(len(section)))
		out = append(out, section...)
		out = appendU32(out, crc(section))
	}

	out = appendU32(out, crc(out))
	return append(out, segEndMagic...)
}

// decodeSegment validates a segment file image end to end (magic,
// header CRC, per-section CRCs, whole-file CRC, footer magic, schema
// echo, geometry, stream index, dictionary coverage) and reconstructs
// the boxed column values. Any failure returns an error describing the
// first mismatch — the caller quarantines the file.
func decodeSegment(data []byte, schema engine.Schema, segBits uint, wantIdx int, dict *storeDict) ([][]engine.Value, error) {
	segRows := 1 << segBits
	segWords := segRows / 64
	if len(data) < len(segMagic)+4 || string(data[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("bad magic")
	}
	if len(data) < len(segEndMagic)+4 || string(data[len(data)-len(segEndMagic):]) != segEndMagic {
		return nil, fmt.Errorf("bad footer magic (truncated?)")
	}
	body := data[:len(data)-len(segEndMagic)]
	fileCRC := binary.LittleEndian.Uint32(body[len(body)-4:])
	if crc(body[:len(body)-4]) != fileCRC {
		return nil, fmt.Errorf("file checksum mismatch")
	}

	r := &byteReader{b: body, off: len(segMagic)}
	headerLen := r.u32()
	header := r.take(int(headerLen))
	headerCRC := r.u32()
	if !r.ok() || crc(header) != headerCRC {
		return nil, fmt.Errorf("header checksum mismatch")
	}
	h := &byteReader{b: header}
	version := h.u32()
	if version != formatVersion && version != formatVersionV1 {
		return nil, fmt.Errorf("format version %d (want %d..%d)", version, formatVersionV1, formatVersion)
	}
	if sb := h.u32(); sb != uint32(segBits) {
		return nil, fmt.Errorf("segment bits %d (want %d)", sb, segBits)
	}
	if idx := h.u64(); idx != uint64(wantIdx) {
		return nil, fmt.Errorf("stream segment index %d (want %d)", idx, wantIdx)
	}
	if nr := h.u32(); nr != uint32(segRows) {
		return nil, fmt.Errorf("row count %d (want %d)", nr, segRows)
	}
	ncols := h.u32()
	if !h.ok() || ncols != uint32(len(schema)) {
		return nil, fmt.Errorf("column count %d (want %d)", ncols, len(schema))
	}
	dictHW := make([]uint32, len(schema))
	for c, col := range schema {
		nameLen := h.u16()
		name := h.take(int(nameLen))
		typ := h.u8()
		dictHW[c] = h.u32()
		if !h.ok() || string(name) != col.Name || engine.Type(typ) != col.Type {
			return nil, fmt.Errorf("schema mismatch at column %d (%q %d, want %q %s)", c, name, typ, col.Name, col.Type)
		}
		if col.Type == engine.TString && int(dictHW[c]) > dict.count(c) {
			return nil, fmt.Errorf("column %s needs %d dictionary entries, only %d survive", col.Name, dictHW[c], dict.count(c))
		}
	}

	if version >= formatVersion {
		// Zone block. The eager decode path doesn't use the zone maps,
		// but it still verifies their framing and CRC — a flipped bit
		// here also fails the whole-file CRC above, so this is mostly a
		// structural check that the block is where the layout says.
		zoneLen := r.u32()
		zoneBody := r.take(int(zoneLen))
		zoneCRC := r.u32()
		if !r.ok() || crc(zoneBody) != zoneCRC {
			return nil, fmt.Errorf("zone block checksum mismatch")
		}
		if int(zoneLen) != zoneRecBytes*len(schema) {
			return nil, fmt.Errorf("zone block is %d bytes, want %d", zoneLen, zoneRecBytes*len(schema))
		}
	}

	out := make([][]engine.Value, len(schema))
	for c, col := range schema {
		sectionLen := r.u32()
		section := r.take(int(sectionLen))
		sectionCRC := r.u32()
		if !r.ok() || crc(section) != sectionCRC {
			return nil, fmt.Errorf("column %s section checksum mismatch", col.Name)
		}
		cellW := 8
		if col.Type == engine.TString {
			cellW = 4
		}
		if len(section) != segWords*8+segRows*cellW {
			return nil, fmt.Errorf("column %s section is %d bytes, want %d", col.Name, len(section), segWords*8+segRows*cellW)
		}
		nulls := section[:segWords*8]
		cells := section[segWords*8:]
		vals := make([]engine.Value, segRows)
		for i := 0; i < segRows; i++ {
			if binary.LittleEndian.Uint64(nulls[(i>>6)*8:])&(1<<(uint(i)&63)) != 0 {
				continue // NULL: zero Value
			}
			if col.Type == engine.TString {
				code := int32(binary.LittleEndian.Uint32(cells[i*4:]))
				s, ok := dict.lookup(c, code)
				if !ok || code >= int32(dictHW[c]) {
					return nil, fmt.Errorf("column %s row %d: dictionary code %d out of range", col.Name, i, code)
				}
				vals[i] = engine.Value{T: engine.TString, S: s}
			} else {
				vals[i] = cellFromBits(col.Type, binary.LittleEndian.Uint64(cells[i*8:]))
			}
		}
		out[c] = vals
	}
	if r.off != len(body)-4 {
		return nil, fmt.Errorf("%d trailing bytes", len(body)-4-r.off)
	}
	return out, nil
}

// readSegHeader extracts just the schema echo from a segment image —
// the manifest-rebuild path when manifest.json itself is corrupt. It
// validates the header checksum but not the sections.
func readSegHeader(data []byte) (schema engine.Schema, segBits uint, err error) {
	if len(data) < len(segMagic)+4 || string(data[:len(segMagic)]) != segMagic {
		return nil, 0, fmt.Errorf("bad magic")
	}
	r := &byteReader{b: data, off: len(segMagic)}
	headerLen := r.u32()
	header := r.take(int(headerLen))
	headerCRC := r.u32()
	if !r.ok() || crc(header) != headerCRC {
		return nil, 0, fmt.Errorf("header checksum mismatch")
	}
	h := &byteReader{b: header}
	if v := h.u32(); v != formatVersion && v != formatVersionV1 {
		return nil, 0, fmt.Errorf("format version %d", v)
	}
	sb := h.u32()
	h.u64() // segIdx
	h.u32() // nrows
	ncols := h.u32()
	if !h.ok() || ncols > 4096 {
		return nil, 0, fmt.Errorf("implausible column count")
	}
	schema = make(engine.Schema, 0, ncols)
	for c := uint32(0); c < ncols; c++ {
		nameLen := h.u16()
		name := h.take(int(nameLen))
		typ := h.u8()
		h.u32() // dictHW
		if !h.ok() {
			return nil, 0, fmt.Errorf("truncated header")
		}
		schema = append(schema, engine.Column{Name: string(name), Type: engine.Type(typ)})
	}
	if err := schema.Validate(); err != nil {
		return nil, 0, err
	}
	return schema, uint(sb), nil
}

// ---- manifest ----

// manifest is a table's durable identity: everything recovery needs
// before it can trust a single segment file. It changes rarely — at
// table creation and at each retention pass (Base moves) — and is
// replaced atomically, so it is either the old or the new version,
// never torn.
type manifest struct {
	Format  int           `json:"format"`
	Name    string        `json:"name"`
	SegBits uint          `json:"seg_bits"`
	Base    int           `json:"base"`
	Schema  []manifestCol `json:"schema"`
}

type manifestCol struct {
	Name string `json:"name"`
	Type int    `json:"type"`
}

// manifestEnvelope wraps the payload with a checksum of its raw bytes
// so a bit flip inside an intact-looking JSON file is still detected.
type manifestEnvelope struct {
	Payload json.RawMessage `json:"payload"`
	CRC32C  uint32          `json:"crc32c"`
}

func manifestFor(name string, schema engine.Schema, segBits uint, base int) manifest {
	m := manifest{Format: formatVersion, Name: name, SegBits: segBits, Base: base}
	for _, c := range schema {
		m.Schema = append(m.Schema, manifestCol{Name: c.Name, Type: int(c.Type)})
	}
	return m
}

func (m manifest) engineSchema() engine.Schema {
	s := make(engine.Schema, 0, len(m.Schema))
	for _, c := range m.Schema {
		s = append(s, engine.Column{Name: c.Name, Type: engine.Type(c.Type)})
	}
	return s
}

func encodeManifest(m manifest) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	return json.Marshal(manifestEnvelope{Payload: payload, CRC32C: crc(payload)})
}

func decodeManifest(data []byte) (manifest, error) {
	var env manifestEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return manifest{}, fmt.Errorf("manifest envelope: %w", err)
	}
	if crc(env.Payload) != env.CRC32C {
		return manifest{}, fmt.Errorf("manifest checksum mismatch")
	}
	var m manifest
	if err := json.Unmarshal(env.Payload, &m); err != nil {
		return manifest{}, fmt.Errorf("manifest payload: %w", err)
	}
	if m.Format != formatVersion && m.Format != formatVersionV1 {
		return manifest{}, fmt.Errorf("manifest format %d (want %d..%d)", m.Format, formatVersionV1, formatVersion)
	}
	if err := m.engineSchema().Validate(); err != nil {
		return manifest{}, fmt.Errorf("manifest schema: %w", err)
	}
	if m.SegBits < engine.MinSegmentBits || m.SegBits > 30 {
		return manifest{}, fmt.Errorf("manifest segment bits %d out of range", m.SegBits)
	}
	if m.Base < 0 || m.Base&(1<<m.SegBits-1) != 0 {
		return manifest{}, fmt.Errorf("manifest base %d not segment-aligned", m.Base)
	}
	return m, nil
}

// writeFileAtomic writes data to name via the temp → fsync → rename →
// dir-fsync protocol: after it returns nil the file is durably whole
// under name; after a crash at any interior point the old file (or
// absence) survives intact.
func writeFileAtomic(fs FS, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, name); err != nil {
		return err
	}
	return fs.SyncDir(dirOf(name))
}

func dirOf(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' || name[i] == '\\' {
			return name[:i]
		}
	}
	return "."
}

// readFileAll slurps a file through the FS.
func readFileAll(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
