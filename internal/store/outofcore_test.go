package store

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/testgen"
)

// outOfCoreOpts is quietOpts plus a (tiny, unless overridden) buffer
// pool so tests exercise eviction thrash, not just the happy path.
func outOfCoreOpts(fs FS, cacheBytes int64) Options {
	o := quietOpts(fs, 1)
	o.MaxResidentBytes = cacheBytes
	return o
}

// buildStream appends nbatch random batches to table "p" on fs and
// returns the oracle rows (coerced, in stream order).
func buildStream(t *testing.T, fs FS, rng *rand.Rand, nbatch int) [][]engine.Value {
	t.Helper()
	st, err := Open("d", quietOpts(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable("P", testgen.Schema(), engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	var oracle [][]engine.Value
	for i := 0; i < nbatch; i++ {
		batch := testgen.Batch(rng, 40+rng.Intn(60))
		nt, err := st.Append("p", batch)
		if err != nil {
			t.Fatal(err)
		}
		for r := len(oracle); r < nt.Base()+nt.NumRows(); r++ {
			local := r - nt.Base()
			row := make([]engine.Value, nt.NumCols())
			for c := range row {
				row[c] = nt.Value(local, c)
			}
			oracle = append(oracle, row)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return oracle
}

// TestOutOfCoreDifferential reopens the same directory resident and
// out-of-core (with a pool far smaller than the data, forcing
// eviction thrash) and requires bit-identical reads, matching dict
// lockstep across post-open appends, and a quiesced pool.
func TestOutOfCoreDifferential(t *testing.T) {
	fs := NewMemFS()
	rng := rand.New(rand.NewSource(42))
	oracle := buildStream(t, fs, rng, 12)

	lazy, err := Open("d", outOfCoreOpts(fs, 4096))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := lazy.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	nsealed, _ := tab.NumSegments()
	if nsealed == 0 {
		t.Fatal("fixture produced no sealed segments")
	}
	for k := 0; k < nsealed; k++ {
		if !tab.SegmentFaultable(k) {
			t.Fatalf("segment %d not faultable after out-of-core open", k)
		}
		if _, ok := tab.SegmentZone(k, 2); !ok {
			t.Fatalf("segment %d missing zone map", k)
		}
	}
	requireRowsMatch(t, tab, oracle)

	// Column views fault through the pool; spot-check them too.
	fv := tab.FloatView(2)
	dv := tab.DictView(3)
	for r := 0; r < tab.NumRows(); r++ {
		want := oracle[tab.Base()+r]
		got := engine.Value{T: engine.TFloat, F: fv.V(r)}
		if fv.IsNull(r) {
			got = engine.Null
		}
		if want[2].IsNull() != got.IsNull() || (!want[2].IsNull() && !valueEq(got, want[2])) {
			t.Fatalf("float view row %d: got %v want %v", r, got, want[2])
		}
		code := dv.CodeAt(r)
		if want[3].IsNull() {
			if code >= 0 {
				t.Fatalf("dict view row %d: got code %d, want NULL", r, code)
			}
		} else if dv.Values()[code] != want[3].S {
			t.Fatalf("dict view row %d: got %q want %q", r, dv.Values()[code], want[3].S)
		}
	}

	// Post-open appends must stay in dictionary lockstep with the store.
	for i := 0; i < 6; i++ {
		batch := testgen.Batch(rng, 50)
		if _, err := lazy.Append("p", batch); err != nil {
			t.Fatal(err)
		}
	}
	tab2, err := lazy.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tab2.NumRows(); r++ {
		_ = tab2.Value(r, 3) // faults old segments, reads new ones
	}

	ps := lazy.Stats().Pool
	if ps == nil {
		t.Fatal("no pool stats in out-of-core mode")
	}
	if ps.Misses == 0 {
		t.Fatal("no pool misses recorded")
	}
	if ps.Evictions == 0 {
		t.Fatalf("tiny pool recorded no evictions: %+v", ps)
	}
	if ps.UsedBytes > 4096 && ps.Pinned == 0 {
		t.Fatalf("unpinned pool over budget: %+v", ps)
	}
	if got := lazy.PoolPinned(); got != 0 {
		t.Fatalf("%d entries still pinned at quiesce", got)
	}
	if err := lazy.Close(); err != nil {
		t.Fatal(err)
	}

	// The appends above spilled new v2 segments; a fresh resident open
	// must accept them (seal path writes the current version).
	res, err := Open("d", quietOpts(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := res.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	ltab := tab2
	if rt.NumRows() != ltab.NumRows() || rt.Base() != ltab.Base() {
		t.Fatalf("resident reopen window (%d,%d) != lazy window (%d,%d)",
			rt.Base(), rt.NumRows(), ltab.Base(), ltab.NumRows())
	}
	for r := 0; r < rt.NumRows(); r++ {
		for c := 0; c < rt.NumCols(); c++ {
			if !valueEq(rt.Value(r, c), ltab.Value(r, c)) {
				t.Fatalf("row %d col %d: resident %v != lazy %v", r, c, rt.Value(r, c), ltab.Value(r, c))
			}
		}
	}
	_ = res.Close()
}

// TestOutOfCoreRetention runs a durable retention pass in out-of-core
// mode: the pool must drop the retained segments' chunks, reads on the
// new window must still match, and a reopen agrees.
func TestOutOfCoreRetention(t *testing.T) {
	fs := NewMemFS()
	rng := rand.New(rand.NewSource(7))
	oracle := buildStream(t, fs, rng, 10)

	lazy, err := Open("d", outOfCoreOpts(fs, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := lazy.Eng().Table("p")
	requireRowsMatch(t, tab, oracle) // warm the pool over all segments
	nt, stats, err := lazy.Retain("p", engine.RetentionPolicy{MaxRows: 3 * (1 << engine.MinSegmentBits)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedSegments == 0 {
		t.Fatal("retention dropped nothing")
	}
	requireRowsMatch(t, nt, oracle)
	if got := lazy.PoolPinned(); got != 0 {
		t.Fatalf("%d entries pinned after retention", got)
	}
	if err := lazy.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open("d", outOfCoreOpts(fs, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := re.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	if rt.Base() != nt.Base() {
		t.Fatalf("reopened base %d, want %d", rt.Base(), nt.Base())
	}
	requireRowsMatch(t, rt, oracle)
	_ = re.Close()
}

// segHeaderLen reads the header length field of a segment file image.
func segHeaderLen(t *testing.T, fs *MemFS, path string) int {
	t.Helper()
	buf := make([]byte, len(segMagic)+4)
	if _, err := fs.ReadAt(path, 0, buf); err != nil {
		t.Fatal(err)
	}
	return int(binary.LittleEndian.Uint32(buf[len(segMagic):]))
}

// firstSegPath returns the path of the lowest-indexed segment file.
func firstSegPath(t *testing.T, fs *MemFS) string {
	t.Helper()
	for _, f := range fs.Files() {
		if strings.HasSuffix(f, segFileName(0)) {
			return f
		}
	}
	t.Fatal("no segment 0 file")
	return ""
}

// TestOutOfCoreZoneCorruptionDegrades flips a bit inside a zone block:
// the out-of-core open must NOT quarantine the segment — it serves it
// without zone maps, logging the reason — and reads stay bit-identical.
func TestOutOfCoreZoneCorruptionDegrades(t *testing.T) {
	fs := NewMemFS()
	rng := rand.New(rand.NewSource(3))
	oracle := buildStream(t, fs, rng, 8)

	path := firstSegPath(t, fs)
	headerLen := segHeaderLen(t, fs, path)
	zoneOff := int64(len(segMagic) + 4 + headerLen + 4)
	if err := fs.FlipBit(path, zoneOff+16, 3); err != nil { // inside zone body
		t.Fatal(err)
	}

	var logged []string
	o := outOfCoreOpts(fs, 1<<20)
	o.Logf = func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }
	lazy, err := Open("d", o)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := lazy.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	if tab.SegmentFaultable(0) {
		if _, ok := tab.SegmentZone(0, 0); ok {
			t.Fatal("damaged zone block still served")
		}
	} else {
		t.Fatal("segment 0 not faultable")
	}
	found := false
	for _, l := range logged {
		if strings.Contains(l, "zone block ignored") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no zone degradation log; got %q", logged)
	}
	for _, st := range lazy.Stats().Tables {
		if len(st.Quarantined) != 0 {
			t.Fatalf("zone damage quarantined a segment: %v", st.Quarantined)
		}
	}
	requireRowsMatch(t, tab, oracle)
	_ = lazy.Close()
}

// TestOutOfCoreSectionCorruptionFaults flips a bit inside a column
// section: the open still succeeds (sections are not read at open),
// and the first fault of that chunk quarantines the file and surfaces
// a SegmentLoadError — never silent data.
func TestOutOfCoreSectionCorruptionFaults(t *testing.T) {
	fs := NewMemFS()
	rng := rand.New(rand.NewSource(11))
	buildStream(t, fs, rng, 8)

	path := firstSegPath(t, fs)
	size, err := fs.FileSize(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip in the middle of the sections region (past header+zones,
	// before the footer).
	if err := fs.FlipBit(path, size/2, 5); err != nil {
		t.Fatal(err)
	}

	lazy, err := Open("d", outOfCoreOpts(fs, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := lazy.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	readAll := func() (err error) {
		defer engine.CatchSegmentLoad(&err)
		for r := 0; r < tab.NumRows(); r++ {
			for c := 0; c < tab.NumCols(); c++ {
				_ = tab.Value(r, c)
			}
		}
		return nil
	}
	if err := readAll(); err == nil {
		t.Fatal("corrupted section served without error")
	}
	quarantined := false
	for _, st := range lazy.Stats().Tables {
		if len(st.Quarantined) > 0 {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatal("fault-time corruption not quarantined in stats")
	}
	if got := lazy.PoolPinned(); got != 0 {
		t.Fatalf("%d entries pinned after failed fault", got)
	}
	_ = lazy.Close()
}

// TestOutOfCoreOpensV1Files rewrites every segment file at format
// version 1 (no zone block) and reopens the directory both resident
// and out-of-core: the compatibility rule says old layouts keep
// serving, just without pruning.
func TestOutOfCoreOpensV1Files(t *testing.T) {
	fs := NewMemFS()
	rng := rand.New(rand.NewSource(5))
	oracle := buildStream(t, fs, rng, 8)

	// Recover the table once to get its decoded segments + dict, then
	// rewrite each file at v1.
	res, err := Open("d", quietOpts(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := res.Eng().Table("p")
	var ts *tableStore
	for _, cand := range res.tables {
		ts = cand
	}
	nsealed, _ := tab.NumSegments()
	for k := 0; k < nsealed; k++ {
		idx := tab.Base()>>ts.segBits + k
		image := encodeSegmentV(formatVersionV1, ts.schema, ts.segBits, idx, tab.SegmentCols(k), ts.dict)
		if err := writeFileAtomic(fs, join(ts.dir, segFileName(idx)), image); err != nil {
			t.Fatal(err)
		}
	}
	_ = res.Close()

	for _, cache := range []int64{0, 1 << 20} {
		st, err := Open("d", outOfCoreOpts(fs, cache))
		if err != nil {
			t.Fatalf("cache=%d: %v", cache, err)
		}
		tb, err := st.Eng().Table("p")
		if err != nil {
			t.Fatalf("cache=%d: %v", cache, err)
		}
		for _, tstat := range st.Stats().Tables {
			if len(tstat.Quarantined) != 0 {
				t.Fatalf("cache=%d: v1 files quarantined: %v", cache, tstat.Quarantined)
			}
		}
		if cache > 0 {
			if _, ok := tb.SegmentZone(0, 0); ok {
				t.Fatalf("cache=%d: v1 file grew a zone map", cache)
			}
		}
		requireRowsMatch(t, tb, oracle)
		_ = st.Close()
	}
}
