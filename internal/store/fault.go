package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
)

// This file is the fault-injection half of the robustness story: an
// in-memory FS with an explicit crash-durability model (MemFS) and a
// wrapper that injects failures at any chosen I/O operation (FaultFS).
// Together they let the recovery tests crash a workload at EVERY
// syscall boundary and then reboot against exactly the bytes a real
// power cut would have left behind:
//
//   - file writes live in a volatile buffer until File.Sync copies
//     them to the durable image; a crash keeps only a prefix of the
//     unsynced suffix (the torn-write model);
//   - namespace operations (create/rename/remove) stay pending until
//     SyncDir of the parent directory; a crash applies each pending
//     operation independently with probability 1/2, which is how the
//     write-temp → fsync → rename protocol gets exercised against
//     reordered metadata.
//
// They are exported (not _test.go) so benchmarks and external
// harnesses can reuse them; production opens use OSFS.

// ErrInjected is returned by the operation a FaultFS fault lands on.
var ErrInjected = errors.New("store: injected I/O fault")

// ErrCrashed is returned by every operation after a FaultFS crash
// point: the simulated process is dead and must "reboot" by calling
// MemFS.Crash and re-opening the store.
var ErrCrashed = errors.New("store: filesystem crashed (reboot required)")

// memFile is one file's two images: data is the live content, synced
// the content guaranteed to survive a crash.
type memFile struct {
	data   []byte
	synced []byte
}

// MemFS is an in-memory FS with POSIX-shaped crash semantics. The
// zero value is not usable; call NewMemFS.
type MemFS struct {
	mu sync.Mutex
	// cur is the live namespace; durable the namespace guaranteed to
	// survive a crash (entries move from cur to durable on SyncDir of
	// their parent). Both map to shared *memFile identities.
	cur     map[string]*memFile
	durable map[string]*memFile
	dirs    map[string]bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		cur:     make(map[string]*memFile),
		durable: make(map[string]*memFile),
		dirs:    make(map[string]bool),
	}
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for d := filepath.Clean(dir); d != "." && d != string(filepath.Separator); d = filepath.Dir(d) {
		m.dirs[d] = true
	}
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]DirEnt, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	if !m.dirs[dir] {
		return nil, fmt.Errorf("memfs: readdir %s: no such directory", dir)
	}
	var out []DirEnt
	for p := range m.cur {
		if filepath.Dir(p) == dir {
			out = append(out, DirEnt{Name: filepath.Base(p)})
		}
	}
	for d := range m.dirs {
		if filepath.Dir(d) == dir {
			out = append(out, DirEnt{Name: filepath.Base(d), Dir: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.cur[filepath.Clean(name)] = f
	return &memHandle{fs: m, f: f, write: true}, nil
}

func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[filepath.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("memfs: open %s: no such file", name)
	}
	return &memHandle{fs: m, f: f}, nil
}

func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	f, ok := m.cur[name]
	if !ok {
		f = &memFile{}
		m.cur[name] = f
	}
	return &memHandle{fs: m, f: f, write: true}, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldname, newname = filepath.Clean(oldname), filepath.Clean(newname)
	f, ok := m.cur[oldname]
	if !ok {
		return fmt.Errorf("memfs: rename %s: no such file", oldname)
	}
	m.cur[newname] = f
	delete(m.cur, oldname)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if _, ok := m.cur[name]; !ok {
		return fmt.Errorf("memfs: remove %s: no such file", name)
	}
	delete(m.cur, name)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[filepath.Clean(name)]
	if !ok {
		return fmt.Errorf("memfs: truncate %s: no such file", name)
	}
	if int(size) < len(f.data) {
		f.data = append([]byte(nil), f.data[:size]...)
	}
	return nil
}

// ReadAt reads from the live image at an offset (the buffer pool's
// chunk-fault read path).
func (m *MemFS) ReadAt(name string, off int64, p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[filepath.Clean(name)]
	if !ok {
		return 0, fmt.Errorf("memfs: readat %s: no such file", name)
	}
	if off < 0 || off > int64(len(f.data)) {
		return 0, fmt.Errorf("memfs: readat %s: offset %d out of range %d", name, off, len(f.data))
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// SyncDir commits dir's pending namespace operations: after it
// returns, the files currently named under dir survive a crash under
// those names (with whatever content THEY have synced).
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	for p := range m.durable {
		if filepath.Dir(p) == dir {
			if _, ok := m.cur[p]; !ok {
				delete(m.durable, p)
			}
		}
	}
	for p, f := range m.cur {
		if filepath.Dir(p) == dir {
			m.durable[p] = f
		}
	}
	return nil
}

// Crash simulates a power cut: the namespace reverts to the durable
// image with each pending namespace op applied independently with
// probability 1/2, and every file's content reverts to its synced
// image plus a random-length prefix of its unsynced appended suffix
// (the torn-write model). After Crash the filesystem represents what a
// rebooted process would find; reuse it with a fresh Open.
func (m *MemFS) Crash(rng *rand.Rand) {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := make(map[string]*memFile, len(m.durable))
	for p, f := range m.durable {
		next[p] = f
	}
	// Pending namespace ops: additions/replacements and removals each
	// land or not, independently — fsync-less renames may be reordered
	// arbitrarily by a real kernel. Iterate in sorted order so a seeded
	// rng yields a deterministic outcome.
	var pending []string
	for p, f := range m.cur {
		if next[p] != f {
			pending = append(pending, p)
		}
	}
	for p := range m.durable {
		if _, ok := m.cur[p]; !ok {
			pending = append(pending, p)
		}
	}
	sort.Strings(pending)
	for _, p := range pending {
		if rng.Intn(2) == 0 {
			continue
		}
		if f, ok := m.cur[p]; ok {
			next[p] = f
		} else {
			delete(next, p)
		}
	}
	// File contents: synced prefix plus a random prefix of unsynced
	// appended bytes. A file truncated below its synced length without
	// a Sync reverts to the longer synced image.
	seenFiles := map[*memFile]bool{}
	for _, f := range next {
		if seenFiles[f] {
			continue
		}
		seenFiles[f] = true
		if len(f.data) > len(f.synced) && bytes.Equal(f.data[:len(f.synced)], f.synced) {
			extra := rng.Intn(len(f.data) - len(f.synced) + 1)
			f.data = append(append([]byte(nil), f.synced...), f.data[len(f.synced):len(f.synced)+extra]...)
		} else {
			f.data = append([]byte(nil), f.synced...)
		}
		f.synced = append([]byte(nil), f.data...)
	}
	m.cur = next
	m.durable = make(map[string]*memFile, len(next))
	for p, f := range next {
		m.durable[p] = f
	}
}

// FlipBit flips bit (off*8+bit) of the named file in BOTH images — the
// corruption model for the checksum tests (a latent media error, not a
// torn write).
func (m *MemFS) FlipBit(name string, off int64, bit uint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[filepath.Clean(name)]
	if !ok {
		return fmt.Errorf("memfs: flipbit %s: no such file", name)
	}
	if off < 0 || int(off) >= len(f.data) {
		return fmt.Errorf("memfs: flipbit %s: offset %d out of range %d", name, off, len(f.data))
	}
	f.data[off] ^= 1 << (bit & 7)
	f.synced = append([]byte(nil), f.data...)
	return nil
}

// FileSize returns the live size of the named file.
func (m *MemFS) FileSize(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[filepath.Clean(name)]
	if !ok {
		return 0, fmt.Errorf("memfs: size %s: no such file", name)
	}
	return int64(len(f.data)), nil
}

// Files lists all live file paths, sorted.
func (m *MemFS) Files() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.cur))
	for p := range m.cur {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// memHandle is one open descriptor.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	off    int
	write  bool
	closed bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.off >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if !h.write {
		return 0, fmt.Errorf("memfs: write on read-only handle")
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.synced = append([]byte(nil), h.f.data...)
	return nil
}

func (h *memHandle) Close() error {
	h.closed = true
	return nil
}

// FaultMode selects what happens at a FaultFS failpoint.
type FaultMode int

const (
	// FaultError fails the chosen operation with ErrInjected (after a
	// possible short write) and lets the process continue — the
	// fail-stop path: the store must surface the error and keep
	// serving already-durable data.
	FaultError FaultMode = iota
	// FaultCrash kills the simulated process at the chosen operation:
	// the op takes partial/ambiguous effect, and every later operation
	// returns ErrCrashed until the harness reboots via MemFS.Crash.
	FaultCrash
)

// FaultFS wraps a MemFS and injects one fault at the n'th mutating
// operation (1-based). Mutating operations are Create, OpenAppend,
// Rename, Remove, Truncate, SyncDir, File.Write and File.Sync — every
// point where a real system call could fail or a power cut could land.
type FaultFS struct {
	Inner *MemFS

	mu      sync.Mutex
	ops     int
	failAt  int
	mode    FaultMode
	rng     *rand.Rand
	crashed bool
}

// NewFaultFS wraps inner with no fault armed.
func NewFaultFS(inner *MemFS) *FaultFS { return &FaultFS{Inner: inner} }

// FailAt arms one fault: the n'th mutating operation from now (1-based)
// fails with the given mode. rng drives partial-effect choices.
func (f *FaultFS) FailAt(n int, mode FaultMode, rng *rand.Rand) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops = 0
	f.failAt = n
	f.mode = mode
	f.rng = rng
	f.crashed = false
}

// Ops reports the mutating operations seen since the last FailAt (or
// construction) — run a workload once unarmed to size the crash matrix.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// step counts one mutating op and reports whether to inject. The
// second result is true when the op should still take (partial)
// effect before failing.
func (f *FaultFS) step() (inject bool, apply bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return true, false, ErrCrashed
	}
	f.ops++
	if f.failAt > 0 && f.ops == f.failAt {
		if f.mode == FaultCrash {
			f.crashed = true
		}
		// Whether the dying op's effect reached the disk is exactly
		// what a crashed process cannot know; flip a coin.
		return true, f.rng.Intn(2) == 1, ErrInjected
	}
	return false, true, nil
}

func (f *FaultFS) MkdirAll(dir string) error { return f.Inner.MkdirAll(dir) }

func (f *FaultFS) ReadDir(dir string) ([]DirEnt, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.Inner.ReadDir(dir)
}

func (f *FaultFS) Create(name string) (File, error) {
	if inject, apply, err := f.step(); inject {
		if apply {
			_, _ = f.Inner.Create(name)
		}
		return nil, err
	}
	h, err := f.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, inner: h}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.Inner.Open(name)
}

// ReadAt delegates to the inner filesystem. Reads are NOT counted as
// mutating operations (the crash matrix enumerates write-side
// failpoints), but a crashed filesystem refuses them like everything
// else.
func (f *FaultFS) ReadAt(name string, off int64, p []byte) (int, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return 0, ErrCrashed
	}
	return f.Inner.ReadAt(name, off, p)
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	if inject, apply, err := f.step(); inject {
		if apply {
			if h, err2 := f.Inner.OpenAppend(name); err2 == nil {
				_ = h.Close()
			}
		}
		return nil, err
	}
	h, err := f.Inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, inner: h}, nil
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if inject, apply, err := f.step(); inject {
		if apply {
			_ = f.Inner.Rename(oldname, newname)
		}
		return err
	}
	return f.Inner.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	if inject, apply, err := f.step(); inject {
		if apply {
			_ = f.Inner.Remove(name)
		}
		return err
	}
	return f.Inner.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if inject, apply, err := f.step(); inject {
		if apply {
			_ = f.Inner.Truncate(name, size)
		}
		return err
	}
	return f.Inner.Truncate(name, size)
}

func (f *FaultFS) SyncDir(dir string) error {
	if inject, apply, err := f.step(); inject {
		if apply {
			_ = f.Inner.SyncDir(dir)
		}
		return err
	}
	return f.Inner.SyncDir(dir)
}

// faultHandle intercepts Write and Sync on files opened for writing.
type faultHandle struct {
	fs    *FaultFS
	inner File
}

func (h *faultHandle) Read(p []byte) (int, error) { return h.inner.Read(p) }

func (h *faultHandle) Write(p []byte) (int, error) {
	if inject, apply, err := h.fs.step(); inject {
		n := 0
		if apply && err == ErrInjected {
			// Short write: a prefix lands before the failure.
			n = h.fs.rng.Intn(len(p) + 1)
			if n > 0 {
				_, _ = h.inner.Write(p[:n])
			}
		}
		return n, err
	}
	return h.inner.Write(p)
}

func (h *faultHandle) Sync() error {
	if inject, apply, err := h.fs.step(); inject {
		if apply && err == ErrInjected {
			_ = h.inner.Sync()
		}
		return err
	}
	return h.inner.Sync()
}

func (h *faultHandle) Close() error { return h.inner.Close() }
