package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"unsafe"

	"repro/internal/engine"
)

// Out-of-core open path. When Options.MaxResidentBytes > 0 the store
// does NOT decode segment files at Open — it reads and validates only
// their headers (and zone blocks) via openSegMeta, attaches faultable
// segments to the engine, and serves chunk faults through tableLoader,
// which decodes sections on demand into the shared buffer pool.
// Section payloads are checksum-verified at fault time, not at open;
// corruption detected then quarantines the file exactly like the eager
// path does at recovery.

// segMeta is everything the loader needs to serve one sealed segment
// file without re-reading its header: the per-column section layout
// (computed from the schema, cross-checked against the v2 zone block)
// and the decoded zone maps. Immutable after openSegMeta.
type segMeta struct {
	path   string
	segIdx int
	secOff []int64 // absolute offset of each column's u32 length prefix
	secLen []int   // section payload bytes (excluding prefix and CRC)
	dictHW []uint32
	zones  []engine.ZoneInfo // nil when absent or damaged (v1 files)
}

// maxSegHeaderLen bounds the header allocation before trusting the
// length field of an unverified file.
const maxSegHeaderLen = 1 << 20

// openSegMeta validates a segment file's envelope — magic, header
// checksum and schema echo, computed layout, footer — with a handful
// of small random-access reads, never touching the column sections.
// A validation failure returns an error and the caller quarantines the
// file, with ONE exception: a damaged v2 zone block only degrades to
// zones == nil (logged), because the data sections carry their own
// CRCs and remain perfectly servable — losing pruning must never lose
// the table.
func openSegMeta(fs FS, path string, schema engine.Schema, segBits uint, wantIdx int, dict *storeDict, logf func(string, ...any)) (*segMeta, error) {
	segRows := 1 << segBits
	pre := make([]byte, len(segMagic)+4)
	if _, err := fs.ReadAt(path, 0, pre); err != nil {
		return nil, fmt.Errorf("read magic: %w", err)
	}
	if string(pre[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("bad magic")
	}
	headerLen := int(binary.LittleEndian.Uint32(pre[len(segMagic):]))
	if headerLen <= 0 || headerLen > maxSegHeaderLen {
		return nil, fmt.Errorf("implausible header length %d", headerLen)
	}
	hb := make([]byte, headerLen+4)
	if _, err := fs.ReadAt(path, int64(len(pre)), hb); err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	header := hb[:headerLen]
	if crc(header) != binary.LittleEndian.Uint32(hb[headerLen:]) {
		return nil, fmt.Errorf("header checksum mismatch")
	}

	h := &byteReader{b: header}
	version := int(h.u32())
	if version != formatVersion && version != formatVersionV1 {
		return nil, fmt.Errorf("format version %d (want %d..%d)", version, formatVersionV1, formatVersion)
	}
	if sb := h.u32(); sb != uint32(segBits) {
		return nil, fmt.Errorf("segment bits %d (want %d)", sb, segBits)
	}
	if idx := h.u64(); idx != uint64(wantIdx) {
		return nil, fmt.Errorf("stream segment index %d (want %d)", idx, wantIdx)
	}
	if nr := h.u32(); nr != uint32(segRows) {
		return nil, fmt.Errorf("row count %d (want %d)", nr, segRows)
	}
	ncols := h.u32()
	if !h.ok() || ncols != uint32(len(schema)) {
		return nil, fmt.Errorf("column count %d (want %d)", ncols, len(schema))
	}
	m := &segMeta{
		path:   path,
		segIdx: wantIdx,
		secOff: make([]int64, len(schema)),
		secLen: make([]int, len(schema)),
		dictHW: make([]uint32, len(schema)),
	}
	for c, col := range schema {
		nameLen := h.u16()
		name := h.take(int(nameLen))
		typ := h.u8()
		m.dictHW[c] = h.u32()
		if !h.ok() || string(name) != col.Name || engine.Type(typ) != col.Type {
			return nil, fmt.Errorf("schema mismatch at column %d (%q %d, want %q %s)", c, name, typ, col.Name, col.Type)
		}
		if col.Type == engine.TString && int(m.dictHW[c]) > dict.count(c) {
			return nil, fmt.Errorf("column %s needs %d dictionary entries, only %d survive", col.Name, m.dictHW[c], dict.count(c))
		}
	}
	if h.remaining() != 0 {
		return nil, fmt.Errorf("%d trailing header bytes", h.remaining())
	}

	secBase, fileSize := segLayout(version, headerLen, schema, segBits)
	off := int64(secBase)
	for c, col := range schema {
		m.secOff[c] = off
		m.secLen[c] = sectionBytes(col.Type, segBits)
		off += int64(4 + m.secLen[c] + 4)
	}

	if version >= formatVersion {
		zoneOff := int64(len(pre) + headerLen + 4)
		wantLen := zoneRecBytes * len(schema)
		zb := make([]byte, 4+wantLen+4)
		m.zones = decodeZoneBlock(fs, path, zoneOff, zb, wantLen, m, segRows, logf)
	}

	// Footer: the end magic must sit exactly where the computed layout
	// says, and the file must stop there.
	foot := make([]byte, len(segEndMagic))
	if _, err := fs.ReadAt(path, int64(fileSize-len(segEndMagic)), foot); err != nil {
		return nil, fmt.Errorf("read footer: %w", err)
	}
	if string(foot) != segEndMagic {
		return nil, fmt.Errorf("bad footer magic (truncated?)")
	}
	if n, err := fs.ReadAt(path, int64(fileSize), make([]byte, 1)); err == nil && n > 0 {
		return nil, fmt.Errorf("trailing bytes after footer")
	}
	return m, nil
}

// decodeZoneBlock reads and verifies the v2 zone block, returning nil
// (after logging) on any damage — never an error.
func decodeZoneBlock(fs FS, path string, zoneOff int64, zb []byte, wantLen int, m *segMeta, segRows int, logf func(string, ...any)) []engine.ZoneInfo {
	degrade := func(why string) []engine.ZoneInfo {
		if logf != nil {
			logf("store: %s: zone block ignored (%s); scans fall back to full-segment masks", path, why)
		}
		return nil
	}
	if _, err := fs.ReadAt(path, zoneOff, zb); err != nil {
		return degrade(err.Error())
	}
	if int(binary.LittleEndian.Uint32(zb)) != wantLen {
		return degrade("length mismatch")
	}
	body := zb[4 : 4+wantLen]
	if crc(body) != binary.LittleEndian.Uint32(zb[4+wantLen:]) {
		return degrade("checksum mismatch")
	}
	r := &byteReader{b: body}
	zones := make([]engine.ZoneInfo, len(m.secOff))
	for c := range zones {
		secOff, secLen, z := readZoneRec(r, segRows)
		if !r.ok() || secOff != uint64(m.secOff[c]) || int(secLen) != m.secLen[c] {
			return degrade(fmt.Sprintf("column %d layout echo mismatch", c))
		}
		zones[c] = z
	}
	return zones
}

// tableLoader serves one table's chunk faults: it implements
// engine.ChunkLoader over the segment files indexed by metas, caching
// decoded chunks in the DB-wide buffer pool.
//
// It deliberately holds NO reference to the tableStore and takes no
// table lock: faults happen under the engine's view lock (which
// RetainCtx acquires while holding the table lock), so touching the
// table lock here would deadlock. The only mutable state — the
// fault-time quarantine record — has its own leaf mutex.
type tableLoader struct {
	pool    *bufferPool
	fs      FS
	name    string
	schema  engine.Schema
	segBits uint
	dict    *storeDict
	metas   map[int]*segMeta // by stream segment index; immutable after Open
	logf    func(string, ...any)

	mu             sync.Mutex
	quarantined    []string
	quarantinedSet map[int]bool
}

var _ engine.ChunkLoader = (*tableLoader)(nil)

// valueBytes approximates the resident size of one boxed engine.Value
// for pool accounting.
const valueBytes = int64(unsafe.Sizeof(engine.Value{}))

// readSection faults one column's raw section bytes and verifies its
// framing and CRC. Corruption quarantines the segment file (rename +
// record, once) and returns the error; plain I/O failures — including
// a file unlinked by retention under a stale reader — do not.
func (l *tableLoader) readSection(m *segMeta, col int) ([]byte, error) {
	secLen := m.secLen[col]
	buf := make([]byte, 4+secLen+4)
	if _, err := l.fs.ReadAt(m.path, m.secOff[col], buf); err != nil {
		return nil, fmt.Errorf("read section: %w", err)
	}
	if int(binary.LittleEndian.Uint32(buf)) != secLen {
		return nil, l.quarantine(m, fmt.Sprintf("column %d section length prefix mismatch", col))
	}
	section := buf[4 : 4+secLen]
	if crc(section) != binary.LittleEndian.Uint32(buf[4+secLen:]) {
		return nil, l.quarantine(m, fmt.Sprintf("column %d section checksum mismatch", col))
	}
	return section, nil
}

// quarantine renames a segment file whose section failed verification
// at fault time — same containment as recovery-time quarantine — and
// returns the error to surface to the faulting query.
func (l *tableLoader) quarantine(m *segMeta, why string) error {
	l.mu.Lock()
	first := !l.quarantinedSet[m.segIdx]
	if first {
		if l.quarantinedSet == nil {
			l.quarantinedSet = make(map[int]bool)
		}
		l.quarantinedSet[m.segIdx] = true
		l.quarantined = append(l.quarantined, fmt.Sprintf("%s: %s", m.path, why))
	}
	l.mu.Unlock()
	if first {
		if err := l.fs.Rename(m.path, m.path+".quarantined"); err == nil {
			_ = l.fs.SyncDir(dirOf(m.path))
		}
		if l.logf != nil {
			l.logf("store: %s: quarantined at fault time: %s", m.path, why)
		}
	}
	return fmt.Errorf("store: %s: %s", m.path, why)
}

// quarantineRecords returns the fault-time quarantine log, merged into
// TableStats alongside recovery-time quarantines.
func (l *tableLoader) quarantineRecords() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.quarantined...)
}

func (l *tableLoader) meta(seg int) (*segMeta, error) {
	if m := l.metas[seg]; m != nil {
		return m, nil
	}
	return nil, fmt.Errorf("store: %s: no segment file for stream segment %d", l.name, seg)
}

// PinFloat implements engine.ChunkLoader: the float64 decode (NaN at
// NULL positions, matching the engine's resident decode) plus NULL
// bitmap words of numeric column col in stream segment seg.
func (l *tableLoader) PinFloat(seg, col int) (vals []float64, null []uint64, release func(), missed bool, err error) {
	m, err := l.meta(seg)
	if err != nil {
		return nil, nil, nil, false, err
	}
	typ := l.schema[col].Type
	e, release, missed, err := l.pool.acquire(chunkKey{table: l.name, seg: seg, col: col, kind: chunkFloat}, func(e *poolEntry) (int64, error) {
		section, err := l.readSection(m, col)
		if err != nil {
			return 0, err
		}
		segRows := 1 << l.segBits
		segWords := segRows / 64
		nulls := section[:segWords*8]
		cells := section[segWords*8:]
		fv := make([]float64, segRows)
		nw := make([]uint64, segWords)
		for w := 0; w < segWords; w++ {
			nw[w] = binary.LittleEndian.Uint64(nulls[w*8:])
		}
		for i := 0; i < segRows; i++ {
			if nw[i>>6]&(1<<(uint(i)&63)) != 0 {
				fv[i] = math.NaN()
				continue
			}
			bits := binary.LittleEndian.Uint64(cells[i*8:])
			if typ == engine.TFloat {
				fv[i] = math.Float64frombits(bits)
			} else {
				fv[i] = float64(int64(bits))
			}
		}
		e.vals, e.null = fv, nw
		return int64(len(fv)*8 + len(nw)*8), nil
	})
	if err != nil {
		return nil, nil, nil, missed, err
	}
	return e.vals, e.null, release, missed, nil
}

// PinCodes implements engine.ChunkLoader: the i32 dictionary codes
// (-1 = NULL) of string column col in stream segment seg, served
// directly from the on-disk code section (the engine dictionary was
// preloaded from the store dictionary, so the code spaces coincide).
func (l *tableLoader) PinCodes(seg, col int) (codes []int32, release func(), missed bool, err error) {
	m, err := l.meta(seg)
	if err != nil {
		return nil, nil, false, err
	}
	e, release, missed, err := l.pool.acquire(chunkKey{table: l.name, seg: seg, col: col, kind: chunkCodes}, func(e *poolEntry) (int64, error) {
		section, err := l.readSection(m, col)
		if err != nil {
			return 0, err
		}
		segRows := 1 << l.segBits
		segWords := segRows / 64
		nulls := section[:segWords*8]
		cells := section[segWords*8:]
		cc := make([]int32, segRows)
		hw := int32(m.dictHW[col])
		for i := 0; i < segRows; i++ {
			if binary.LittleEndian.Uint64(nulls[(i>>6)*8:])&(1<<(uint(i)&63)) != 0 {
				cc[i] = -1
				continue
			}
			code := int32(binary.LittleEndian.Uint32(cells[i*4:]))
			if code < 0 || code >= hw {
				return 0, l.quarantine(m, fmt.Sprintf("column %d row %d: dictionary code %d out of range", col, i, code))
			}
			cc[i] = code
		}
		e.codes = cc
		return int64(len(cc) * 4), nil
	})
	if err != nil {
		return nil, nil, missed, err
	}
	return e.codes, release, missed, nil
}

// PinBoxed implements engine.ChunkLoader: the boxed engine.Value
// decode of column col in stream segment seg (NULL = zero Value),
// identical to what the eager open path would have built.
func (l *tableLoader) PinBoxed(seg, col int) (vals []engine.Value, release func(), missed bool, err error) {
	m, err := l.meta(seg)
	if err != nil {
		return nil, nil, false, err
	}
	colDef := l.schema[col]
	e, release, missed, err := l.pool.acquire(chunkKey{table: l.name, seg: seg, col: col, kind: chunkBoxed}, func(e *poolEntry) (int64, error) {
		section, err := l.readSection(m, col)
		if err != nil {
			return 0, err
		}
		segRows := 1 << l.segBits
		segWords := segRows / 64
		nulls := section[:segWords*8]
		cells := section[segWords*8:]
		bv := make([]engine.Value, segRows)
		var strs []string
		if colDef.Type == engine.TString {
			strs = l.dict.snapshot(col, int(m.dictHW[col]))
		}
		for i := 0; i < segRows; i++ {
			if binary.LittleEndian.Uint64(nulls[(i>>6)*8:])&(1<<(uint(i)&63)) != 0 {
				continue // NULL: zero Value
			}
			if colDef.Type == engine.TString {
				code := int32(binary.LittleEndian.Uint32(cells[i*4:]))
				if code < 0 || int(code) >= len(strs) {
					return 0, l.quarantine(m, fmt.Sprintf("column %d row %d: dictionary code %d out of range", col, i, code))
				}
				bv[i] = engine.Value{T: engine.TString, S: strs[code]}
			} else {
				bv[i] = cellFromBits(colDef.Type, binary.LittleEndian.Uint64(cells[i*8:]))
			}
		}
		e.boxed = bv
		return int64(len(bv)) * valueBytes, nil
	})
	if err != nil {
		return nil, nil, missed, err
	}
	return e.boxed, release, missed, nil
}
