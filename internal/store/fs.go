package store

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the narrow filesystem surface the store performs ALL its I/O
// through. Production code uses OSFS; tests swap in MemFS/FaultFS
// (fault.go) to inject short writes, fsync failures and
// crash-at-every-syscall without touching a real disk. The methods
// mirror the POSIX durability model the store's protocols are written
// against: file contents become crash-durable only on File.Sync, and
// namespace operations (Create/Rename/Remove) become crash-durable
// only on SyncDir of the parent directory.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadDir lists dir's entries.
	ReadDir(dir string) ([]DirEnt, error)
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate shrinks name to size bytes (the WAL torn-tail repair).
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making its namespace ops durable.
	SyncDir(dir string) error
	// ReadAt reads len(p) bytes of name starting at off — the random-
	// access read the out-of-core buffer pool faults segment-column
	// chunks in with (everything else in the store reads sequentially).
	// Like io.ReaderAt it returns a non-nil error when fewer than len(p)
	// bytes are available.
	ReadAt(name string, off int64, p []byte) (int, error)
}

// DirEnt is one directory entry.
type DirEnt struct {
	Name string
	Dir  bool
}

// File is the store's handle abstraction: sequential reads, appending
// writes, fsync, close. The store never seeks or overwrites in place —
// every on-disk structure is append-only or whole-file-replaced — so
// the interface stays small enough to fault-inject exhaustively.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// OSFS is the production FS over the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) ReadDir(dir string) ([]DirEnt, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make([]DirEnt, len(ents))
	for i, e := range ents {
		out[i] = DirEnt{Name: e.Name(), Dir: e.IsDir()}
	}
	return out, nil
}

func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OSFS) Open(name string) (File, error) { return os.Open(name) }

func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OSFS) ReadAt(name string, off int64, p []byte) (int, error) {
	f, err := os.Open(name)
	if err != nil {
		return 0, err
	}
	n, err := f.ReadAt(p, off)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// join builds FS paths; all store paths go through it so the FS
// implementations see consistent separators.
func join(elem ...string) string { return filepath.Join(elem...) }
