package store

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/testgen"
)

// quietOpts returns Options that log nowhere and use fs.
func quietOpts(fs FS, syncEvery int) Options {
	return Options{FS: fs, SyncEvery: syncEvery, Logf: func(string, ...any) {}}
}

// valueEq is bit-identical Value equality: float cells compare by IEEE
// bits (NaN == NaN, -0.0 != +0.0), everything else by exact payload.
func valueEq(a, b engine.Value) bool {
	if a.T != b.T {
		return false
	}
	switch a.T {
	case engine.TFloat:
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	case engine.TString:
		return a.S == b.S
	default:
		return a.I == b.I
	}
}

// requireRowsMatch asserts every row of the recovered table is
// bit-identical to the stream-indexed oracle rows.
func requireRowsMatch(t *testing.T, tab *engine.Table, oracle [][]engine.Value) {
	t.Helper()
	for r := 0; r < tab.NumRows(); r++ {
		id := tab.Base() + r
		if id >= len(oracle) {
			t.Fatalf("recovered stream row %d beyond oracle end %d", id, len(oracle))
		}
		for c := 0; c < tab.NumCols(); c++ {
			got, want := tab.Value(r, c), oracle[id][c]
			if !valueEq(got, want) {
				t.Fatalf("stream row %d col %d: got %v want %v", id, c, got, want)
			}
		}
	}
}

func TestStoreRoundtripOSFS(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable("P", testgen.Schema(), engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var oracle [][]engine.Value
	for i := 0; i < 9; i++ {
		batch := testgen.Batch(rng, 40+rng.Intn(60))
		if _, err := st.Append("p", batch); err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, batch...)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := st2.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "P" {
		t.Fatalf("recovered name %q, want original case P", tab.Name())
	}
	if tab.Version() != len(oracle) {
		t.Fatalf("recovered %d rows, want %d", tab.Version(), len(oracle))
	}
	requireRowsMatch(t, tab, oracle)
	stats := st2.Stats()
	ts := stats.Tables["p"]
	if len(ts.Quarantined) != 0 || ts.GapSegments != 0 || ts.Failed != "" || len(stats.Skipped) != 0 {
		t.Fatalf("clean reopen reported damage: %+v", stats)
	}

	// Keep appending after recovery, reopen once more.
	batch := testgen.Batch(rng, 100)
	if _, err := st2.Append("p", batch); err != nil {
		t.Fatal(err)
	}
	oracle = append(oracle, batch...)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir, Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	tab, err = st3.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Version() != len(oracle) {
		t.Fatalf("second recovery: %d rows, want %d", tab.Version(), len(oracle))
	}
	requireRowsMatch(t, tab, oracle)
}

func TestStoreRetentionDurable(t *testing.T) {
	mem := NewMemFS()
	st, err := Open("/db", quietOpts(mem, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable("p", testgen.Schema(), engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var oracle [][]engine.Value
	for i := 0; i < 6; i++ {
		batch := testgen.Batch(rng, 64)
		if _, err := st.Append("p", batch); err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, batch...)
	}
	nt, stats, err := st.Retain("p", engine.RetentionPolicy{MaxRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedSegments == 0 {
		t.Fatal("retention dropped nothing")
	}
	wantBase := nt.Base()
	for _, f := range mem.Files() {
		if idx := parseSegFileName(f[len("/db/p/"):]); idx >= 0 && idx < wantBase>>engine.MinSegmentBits {
			t.Fatalf("retained-out segment file %s still present", f)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open("/db", quietOpts(mem, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	tab, err := st2.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Base() != wantBase || tab.Version() != len(oracle) {
		t.Fatalf("recovered base/version %d/%d, want %d/%d", tab.Base(), tab.Version(), wantBase, len(oracle))
	}
	requireRowsMatch(t, tab, oracle)
}

func TestStoreDisableWAL(t *testing.T) {
	mem := NewMemFS()
	opts := quietOpts(mem, 1)
	opts.DisableWAL = true
	st, err := Open("/db", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable("p", testgen.Schema(), engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var oracle [][]engine.Value
	for i := 0; i < 3; i++ {
		batch := testgen.Batch(rng, 64) // seals exactly one segment each
		if _, err := st.Append("p", batch); err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, batch...)
	}
	if _, err := st.Append("p", testgen.Batch(rng, 10)); err != nil { // tail, volatile
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open("/db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	tab, err := st2.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Version() != 192 {
		t.Fatalf("DisableWAL recovery has %d rows, want the 192 sealed ones", tab.Version())
	}
	requireRowsMatch(t, tab, oracle)
}

func TestStoreSyncEveryBatching(t *testing.T) {
	mem := NewMemFS()
	st, err := Open("/db", quietOpts(mem, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable("p", testgen.Schema(), engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var oracle [][]engine.Value
	for i := 0; i < 3; i++ { // 3 batches of 5: under SyncEvery, no seal
		batch := testgen.Batch(rng, 5)
		if _, err := st.Append("p", batch); err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, batch...)
	}
	// A crash now may lose all three unsynced batches — but recovery
	// must still yield a clean batch prefix (here: the empty one).
	mem.Crash(rand.New(rand.NewSource(1)))
	st2, err := Open("/db", quietOpts(mem, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	tab, err := st2.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	if v := tab.Version(); v != 0 && v != 5 && v != 10 && v != 15 {
		t.Fatalf("recovered %d rows: not a batch prefix of 3x5", v)
	}
	requireRowsMatch(t, tab, oracle)
}

func TestStoreFailStop(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	st, err := Open("/db", quietOpts(ffs, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable("p", testgen.Schema(), engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	var oracle [][]engine.Value
	for i := 0; i < 2; i++ {
		batch := testgen.Batch(rng, 64)
		if _, err := st.Append("p", batch); err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, batch...)
	}
	acked, err := st.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}

	// Fail the very next mutating operation (the WAL append write).
	ffs.FailAt(1, FaultError, rand.New(rand.NewSource(2)))
	if _, err := st.Append("p", testgen.Batch(rng, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("append with injected fault returned %v", err)
	}
	// Fail-stop: later mutations refuse without touching the disk...
	if _, err := st.Append("p", testgen.Batch(rng, 8)); err == nil {
		t.Fatal("append after fail-stop succeeded")
	}
	if _, _, err := st.Retain("p", engine.RetentionPolicy{MaxRows: 64}); err == nil {
		t.Fatal("retain after fail-stop succeeded")
	}
	if got := st.Stats().Tables["p"].Failed; got == "" {
		t.Fatal("stats do not report the fail-stop")
	}
	// ...while reads keep serving the last published version.
	cur, err := st.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version() != acked.Version() {
		t.Fatalf("published version moved across fail-stop: %d -> %d", acked.Version(), cur.Version())
	}

	// A restart (no crash — the disk is intact) recovers everything
	// acknowledged before the fault.
	_ = st.Close()
	st2, err := Open("/db", quietOpts(mem, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	tab, err := st2.Eng().Table("p")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Version() < len(oracle) {
		t.Fatalf("recovery lost acknowledged rows: %d < %d", tab.Version(), len(oracle))
	}
	requireRowsMatch(t, tab, oracle)
	if _, err := st2.Append("p", testgen.Batch(rng, 8)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestStoreErrors(t *testing.T) {
	mem := NewMemFS()
	st, err := Open("/db", quietOpts(mem, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append("nope", testgen.Batch(rand.New(rand.NewSource(1)), 1)); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("append to unknown table: %v", err)
	}
	if err := st.CreateTable("p", testgen.Schema(), engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable("P", testgen.Schema(), engine.MinSegmentBits); err == nil {
		t.Fatal("duplicate CreateTable succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := st.Append("p", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed store: %v", err)
	}
	if err := st.CreateTable("q", testgen.Schema(), engine.MinSegmentBits); !errors.Is(err, ErrClosed) {
		t.Fatalf("create on closed store: %v", err)
	}
}

func TestStoreCloseSurfacesSyncError(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	st, err := Open("/db", quietOpts(ffs, 100)) // keep batches unsynced
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable("p", testgen.Schema(), engine.MinSegmentBits); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append("p", testgen.Batch(rand.New(rand.NewSource(1)), 5)); err != nil {
		t.Fatal(err)
	}
	// The next mutating op is Close's flush of the pending WAL batch.
	ffs.FailAt(1, FaultError, rand.New(rand.NewSource(2)))
	if err := st.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("close with failing fsync returned %v, want ErrInjected", err)
	}
}
