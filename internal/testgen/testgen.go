// Package testgen generates randomized tables, append batches,
// statements, suspect selections and error metrics for the
// differential test harnesses that pin the incremental paths
// (exec.Advance, influence.AdvanceScorer, core.DebugAdvance) to their
// from-scratch oracles.
//
// The value distribution deliberately reuses the PR 3 parity
// generator's shape: NULL-heavy columns, NaN, signed zeros, and
// collision-heavy values — and floats drawn from multiples of 0.25 in
// a small range, whose sums (and sums of squares) are exactly
// representable, so sharded scans, merged aggregate states and
// suffix-folded advances must agree with a sequential rebuild to the
// last bit. Differential tests can therefore assert exact equality
// instead of hiding maintenance bugs behind a tolerance.
//
// This is a non-test package so every layer's _test files can share
// one generator; it must not be imported from production code.
package testgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/sqlparse"
)

// Schema is the generated table's shape: two small-domain ints, a
// float with NULL/NaN/±0.0, a string dictionary with NULLs and empty
// strings, and a timestamp.
func Schema() engine.Schema {
	return engine.Schema{
		{Name: "i", Type: engine.TInt},
		{Name: "j", Type: engine.TInt},
		{Name: "f", Type: engine.TFloat},
		{Name: "s", Type: engine.TString},
		{Name: "t", Type: engine.TTime},
	}
}

var genStrs = []string{"a", "b", "c", "", "xy"}

// Row draws one random row of Schema.
func Row(rng *rand.Rand) []engine.Value {
	row := make([]engine.Value, 5)
	row[0] = engine.NewInt(int64(rng.Intn(11) - 5))
	if rng.Float64() < 0.15 {
		row[0] = engine.Null
	}
	row[1] = engine.NewInt(int64(rng.Intn(4)))
	switch {
	case rng.Float64() < 0.12:
		row[2] = engine.Null
	case rng.Float64() < 0.1:
		row[2] = engine.NewFloat(math.NaN())
	case rng.Float64() < 0.08:
		// Signed zeros: Key() and the executor's canonSlot must both
		// collapse -0.0 and +0.0 into one group.
		row[2] = engine.NewFloat(math.Copysign(0, -1))
	case rng.Float64() < 0.08:
		row[2] = engine.NewFloat(0)
	default:
		// Multiples of 0.25 in [-8, 8): exact partial sums.
		row[2] = engine.NewFloat(float64(rng.Intn(64)-32) * 0.25)
	}
	if rng.Float64() < 0.15 {
		row[3] = engine.Null
	} else {
		row[3] = engine.NewString(genStrs[rng.Intn(len(genStrs))])
	}
	if rng.Float64() < 0.1 {
		row[4] = engine.Null
	} else {
		row[4] = engine.NewTimeUnix(int64(rng.Intn(7200)))
	}
	return row
}

// Table builds a random table named "p" with nrows rows.
func Table(rng *rand.Rand, nrows int) *engine.Table {
	t, err := engine.NewTable("p", Schema())
	if err != nil {
		panic(err)
	}
	for r := 0; r < nrows; r++ {
		if _, err := t.AppendRow(Row(rng)); err != nil {
			panic(err)
		}
	}
	return t
}

// Batch draws k random rows as an AppendBatch payload.
func Batch(rng *rand.Rand, k int) [][]engine.Value {
	out := make([][]engine.Value, k)
	for i := range out {
		out[i] = Row(rng)
	}
	return out
}

// DebugStmt generates a random grouped aggregate statement a Debug run
// can analyze: 1–2 group-by keys over the dictionary / small-int /
// bucketed columns and 1–3 removable aggregates over the float column
// (occasionally a computed argument or a DISTINCT count, which
// exercises the boxed fallback and the advance's full-run path).
func DebugStmt(rng *rand.Rand) *sqlparse.SelectStmt {
	stmt := &sqlparse.SelectStmt{From: "p", Limit: -1}
	var groupBy []expr.Expr
	switch rng.Intn(5) {
	case 0:
		groupBy = []expr.Expr{expr.NewCol("s")}
	case 1:
		groupBy = []expr.Expr{expr.NewCol("i")}
	case 2:
		groupBy = []expr.Expr{expr.NewFunc("bucket", expr.NewCol("i"), expr.Int(3))}
	case 3:
		groupBy = []expr.Expr{expr.NewCol("s"), expr.NewCol("j")}
	default:
		groupBy = []expr.Expr{expr.NewCol("j")}
	}
	stmt.GroupBy = groupBy
	for k, g := range groupBy {
		stmt.Items = append(stmt.Items, sqlparse.SelectItem{Expr: cloneExpr(g), Alias: fmt.Sprintf("g%d", k)})
	}
	nagg := 1 + rng.Intn(3)
	for k := 0; k < nagg; k++ {
		var call *sqlparse.AggCall
		switch rng.Intn(10) {
		case 0:
			call = &sqlparse.AggCall{Name: "count", Star: true}
		case 1:
			call = &sqlparse.AggCall{Name: "avg", Arg: expr.NewCol("f")}
		case 2:
			call = &sqlparse.AggCall{Name: "stddev", Arg: expr.NewCol("f")}
		case 3:
			call = &sqlparse.AggCall{Name: "var", Arg: expr.NewCol("f")}
		case 4:
			call = &sqlparse.AggCall{Name: "median", Arg: expr.NewCol("f")}
		case 5:
			call = &sqlparse.AggCall{Name: "sum", Arg: expr.NewBin(expr.OpAdd, expr.NewCol("f"), expr.NewCol("j"))}
		case 6:
			if rng.Float64() < 0.5 {
				// DISTINCT: no float fast path — the advance must fall
				// back to the full pipeline and still match.
				call = &sqlparse.AggCall{Name: "count", Arg: expr.NewCol("s"), Distinct: true}
			} else {
				call = &sqlparse.AggCall{Name: "min", Arg: expr.NewCol("f")}
			}
		case 7:
			call = &sqlparse.AggCall{Name: "max", Arg: expr.NewCol("f")}
		default:
			call = &sqlparse.AggCall{Name: "sum", Arg: expr.NewCol("f")}
		}
		stmt.Items = append(stmt.Items, sqlparse.SelectItem{Agg: call, Alias: fmt.Sprintf("a%d", k)})
	}
	if rng.Float64() < 0.4 {
		col := []string{"i", "j", "f"}[rng.Intn(3)]
		ops := []expr.BinOp{expr.OpGe, expr.OpLe, expr.OpNeq}
		var lit expr.Expr
		if col == "f" {
			lit = expr.Float(float64(rng.Intn(32)-16) * 0.25)
		} else {
			lit = expr.Int(int64(rng.Intn(7) - 3))
		}
		stmt.Where = expr.NewBin(ops[rng.Intn(len(ops))], expr.NewCol(col), lit)
	}
	return stmt
}

// cloneExpr re-parses an expression from its SQL rendering so select
// items and GROUP BY don't share nodes (matching the parser's output).
func cloneExpr(g expr.Expr) expr.Expr {
	stmt, err := sqlparse.Parse("SELECT " + g.String() + " FROM x GROUP BY " + g.String())
	if err != nil {
		panic(fmt.Sprintf("testgen: cloneExpr %q: %v", g, err))
	}
	return stmt.Items[0].Expr
}

// Suspects draws a random non-empty subset of res's output rows whose
// first aggregate is non-NULL (Debug rejects all-NULL selections with
// an empty-lineage error either way; keeping some signal makes the
// harness exercise the interesting paths more often).
func Suspects(rng *rand.Rand, res *exec.Result) []int {
	n := res.NumRows()
	if n == 0 {
		return nil
	}
	want := 1 + rng.Intn(3)
	var out []int
	// Evenly spaced starting at a random offset: deterministic given
	// the rng, covers different groups across iterations.
	off := rng.Intn(n)
	for k := 0; k < n && len(out) < want; k++ {
		out = append(out, (off+k*maxInt(1, n/want))%n)
	}
	seen := map[int]bool{}
	uniq := out[:0]
	for _, r := range out {
		if !seen[r] {
			seen[r] = true
			uniq = append(uniq, r)
		}
	}
	return uniq
}

// Metric draws a random error metric with a small integral reference,
// so ε values stay exactly representable.
func Metric(rng *rand.Rand) errmetric.Metric {
	c := float64(rng.Intn(9) - 4)
	switch rng.Intn(3) {
	case 0:
		return errmetric.TooHigh{C: c}
	case 1:
		return errmetric.TooLow{C: c}
	default:
		return errmetric.NotEqual{C: c}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TableSeg builds a random table named "p" with nrows rows and a
// forced segment size of 1<<segBits rows — harnesses pass
// engine.MinSegmentBits so short append chains straddle many segment
// boundaries and retention drops land mid-test.
func TableSeg(rng *rand.Rand, nrows int, segBits uint) *engine.Table {
	t, err := engine.NewTableSeg("p", Schema(), segBits)
	if err != nil {
		panic(err)
	}
	for r := 0; r < nrows; r++ {
		if _, err := t.AppendRow(Row(rng)); err != nil {
			panic(err)
		}
	}
	return t
}

// BoundaryBatchSize draws an append batch size biased to land exactly
// on, one under, or one over the table's next segment boundary —
// where every off-by-one in the seal/rebase plumbing would live — and
// otherwise a small random size.
func BoundaryBatchSize(rng *rand.Rand, t *engine.Table) int {
	segRows := t.SegRows()
	toBoundary := segRows - t.NumRows()%segRows // rows until the next seal
	switch rng.Intn(6) {
	case 0:
		return toBoundary // lands exactly on the boundary
	case 1:
		if toBoundary > 1 {
			return toBoundary - 1 // one under
		}
		return 1
	case 2:
		return toBoundary + 1 // one over
	case 3:
		return toBoundary + segRows // straddles two boundaries
	default:
		return 1 + rng.Intn(2*segRows)
	}
}

// RetainStep applies a randomized row-bound retention policy to the
// newest version, returning it (possibly unchanged) plus the stream
// rows dropped. Harnesses interleave it with append batches to
// exercise the carried-state rebase/fallback paths.
func RetainStep(rng *rand.Rand, t *engine.Table) (*engine.Table, int) {
	keep := t.SegRows() * (1 + rng.Intn(4))
	nt, stats, err := t.RetainTail(engine.RetentionPolicy{MaxRows: keep})
	if err != nil {
		panic(err)
	}
	return nt, stats.DroppedRows
}
