// Package feature derives a shared attribute space from an engine table
// for the three learners DBWipes uses (k-means/naive-Bayes cleaning,
// CN2-SD subgroup discovery, decision trees).
//
// Numeric columns contribute standardized coordinates and a set of
// quantile-derived split thresholds; string columns contribute their
// most frequent values as equality selectors. The aggregate's input
// column and group-by columns can be excluded so that explanations are
// phrased over the remaining descriptive attributes — though the paper's
// examples (moteid, voltage, memo) show that keeping most columns is
// what yields the interesting predicates.
package feature

import (
	"math"
	"sort"
	"strings"

	"repro/internal/engine"
)

// Kind classifies an attribute.
type Kind int

// Attribute kinds.
const (
	Numeric Kind = iota
	Categorical
)

// String returns the kind name.
func (k Kind) String() string {
	if k == Numeric {
		return "numeric"
	}
	return "categorical"
}

// Attr is one usable attribute of the space.
type Attr struct {
	Name string
	Col  int
	Kind Kind
	// Type is the underlying engine column type.
	Type engine.Type
	// Values holds the frequent distinct values of a categorical
	// attribute (most frequent first, capped at MaxCategories).
	Values []engine.Value
	// Thresholds holds candidate numeric split points (deduplicated
	// quantile midpoints).
	Thresholds []float64
	// Mean and Std standardize numeric attributes for k-means; Std is 1
	// for constant columns.
	Mean, Std float64
	// Min and Max are the observed numeric range.
	Min, Max float64
}

// Space is the derived attribute space over one table.
type Space struct {
	Table *engine.Table
	Attrs []Attr
	// numericIdx lists positions in Attrs that are numeric, defining the
	// coordinate order of Vector.
	numericIdx []int
}

// Options configures space construction.
type Options struct {
	// Exclude lists column names to omit (case-insensitive) — typically
	// the aggregated column when the user wants explanations independent
	// of the measure, and synthetic ids.
	Exclude []string
	// MaxCategories caps equality selectors per categorical attribute
	// (default 20). Rarer values are not enumerated.
	MaxCategories int
	// NumThresholds is the number of quantile thresholds per numeric
	// attribute (default 12).
	NumThresholds int
	// Rows restricts statistics to a subset of rows (default: all).
	Rows []int
	// SampleCap bounds how many rows are examined for statistics
	// (default 50000, evenly spaced).
	SampleCap int
}

func (o *Options) defaults() {
	if o.MaxCategories <= 0 {
		o.MaxCategories = 20
	}
	if o.NumThresholds <= 0 {
		o.NumThresholds = 12
	}
	if o.SampleCap <= 0 {
		o.SampleCap = 50000
	}
}

// NewSpace derives the attribute space of t.
func NewSpace(t *engine.Table, opt Options) *Space {
	opt.defaults()
	excluded := make(map[string]bool, len(opt.Exclude))
	for _, e := range opt.Exclude {
		excluded[strings.ToLower(e)] = true
	}

	rows := opt.Rows
	if rows == nil {
		rows = make([]int, t.NumRows())
		for i := range rows {
			rows[i] = i
		}
	}
	if len(rows) > opt.SampleCap {
		sampled := make([]int, 0, opt.SampleCap)
		step := float64(len(rows)) / float64(opt.SampleCap)
		for i := 0; i < opt.SampleCap; i++ {
			sampled = append(sampled, rows[int(float64(i)*step)])
		}
		rows = sampled
	}

	sp := &Space{Table: t}
	// One reader serves every column profile below: on out-of-core
	// tables Table.Value pins a chunk transiently per row, so profiling
	// a faultable column through it would re-decode the chunk per row.
	rr := t.NewRowReader()
	defer rr.Close()
	for c, col := range t.Schema() {
		if excluded[strings.ToLower(col.Name)] {
			continue
		}
		switch {
		case col.Type.IsNumeric():
			attr, ok := numericAttr(t, rr, c, col.Name, rows, opt.NumThresholds)
			if ok {
				sp.numericIdx = append(sp.numericIdx, len(sp.Attrs))
				sp.Attrs = append(sp.Attrs, attr)
			}
		case col.Type == engine.TString:
			attr, ok := categoricalAttr(t, rr, c, col.Name, rows, opt.MaxCategories)
			if ok {
				sp.Attrs = append(sp.Attrs, attr)
			}
		}
	}
	return sp
}

func numericAttr(t *engine.Table, rr *engine.RowReader, c int, name string, rows []int, nThresh int) (Attr, bool) {
	vals := make([]float64, 0, len(rows))
	var sum, sumsq float64
	for _, r := range rows {
		v := rr.Value(r, c)
		if v.IsNull() {
			continue
		}
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		vals = append(vals, f)
		sum += f
		sumsq += f * f
	}
	if len(vals) == 0 {
		return Attr{}, false
	}
	n := float64(len(vals))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	std := math.Sqrt(variance)
	if std == 0 {
		std = 1
	}
	sort.Float64s(vals)
	attr := Attr{
		Name: name, Col: c, Kind: Numeric, Type: t.Schema()[c].Type,
		Mean: mean, Std: std,
		Min: vals[0], Max: vals[len(vals)-1],
	}
	// Quantile midpoint thresholds, deduplicated. A constant column
	// yields no thresholds but still standardizes.
	prev := math.Inf(-1)
	for q := 1; q <= nThresh; q++ {
		idx := q * (len(vals) - 1) / (nThresh + 1)
		cut := vals[idx]
		if cut > prev {
			attr.Thresholds = append(attr.Thresholds, cut)
			prev = cut
		}
	}
	return attr, true
}

func categoricalAttr(t *engine.Table, rr *engine.RowReader, c int, name string, rows []int, maxCats int) (Attr, bool) {
	counts := make(map[string]int)
	repr := make(map[string]engine.Value)
	for _, r := range rows {
		v := rr.Value(r, c)
		if v.IsNull() {
			continue
		}
		k := v.Key()
		counts[k]++
		if _, ok := repr[k]; !ok {
			repr[k] = v
		}
	}
	if len(counts) == 0 {
		return Attr{}, false
	}
	type kv struct {
		k string
		n int
	}
	all := make([]kv, 0, len(counts))
	for k, n := range counts {
		all = append(all, kv{k, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].k < all[j].k
	})
	if len(all) > maxCats {
		all = all[:maxCats]
	}
	attr := Attr{Name: name, Col: c, Kind: Categorical, Type: t.Schema()[c].Type}
	for _, e := range all {
		attr.Values = append(attr.Values, repr[e.k])
	}
	return attr, true
}

// Dim returns the numeric coordinate dimension of Vector.
func (s *Space) Dim() int { return len(s.numericIdx) }

// Vector writes the standardized numeric coordinates of a row into dst
// (allocating when dst is too small) and returns it. NULLs map to 0
// (the mean after standardization).
func (s *Space) Vector(row int, dst []float64) []float64 {
	if cap(dst) < len(s.numericIdx) {
		dst = make([]float64, len(s.numericIdx))
	}
	dst = dst[:len(s.numericIdx)]
	for i, ai := range s.numericIdx {
		a := &s.Attrs[ai]
		v := s.Table.Value(row, a.Col)
		if v.IsNull() {
			dst[i] = 0
			continue
		}
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			dst[i] = 0
			continue
		}
		dst[i] = (f - a.Mean) / a.Std
	}
	return dst
}

// AttrByName returns the attribute with the given name, or nil.
func (s *Space) AttrByName(name string) *Attr {
	for i := range s.Attrs {
		if strings.EqualFold(s.Attrs[i].Name, name) {
			return &s.Attrs[i]
		}
	}
	return nil
}
