package feature

import (
	"math"
	"testing"

	"repro/internal/engine"
)

func mixedTable(t *testing.T, n int) *engine.Table {
	t.Helper()
	tbl := engine.MustNewTable("t", engine.NewSchema(
		"id", engine.TInt,
		"temp", engine.TFloat,
		"city", engine.TString,
		"constant", engine.TFloat,
	))
	cities := []string{"BOSTON", "NYC", "BOSTON", "LA"}
	for i := 0; i < n; i++ {
		tbl.MustAppendRow(
			engine.NewInt(int64(i)),
			engine.NewFloat(float64(i%50)),
			engine.NewString(cities[i%len(cities)]),
			engine.NewFloat(7),
		)
	}
	return tbl
}

func TestNewSpaceDetectsKinds(t *testing.T) {
	sp := NewSpace(mixedTable(t, 100), Options{})
	if len(sp.Attrs) != 4 {
		t.Fatalf("attrs: %d", len(sp.Attrs))
	}
	byName := map[string]*Attr{}
	for i := range sp.Attrs {
		byName[sp.Attrs[i].Name] = &sp.Attrs[i]
	}
	if byName["id"].Kind != Numeric || byName["temp"].Kind != Numeric {
		t.Error("numeric detection")
	}
	if byName["city"].Kind != Categorical {
		t.Error("categorical detection")
	}
	if len(byName["city"].Values) != 3 {
		t.Errorf("city values: %v", byName["city"].Values)
	}
	// Most frequent first: BOSTON appears twice per cycle.
	if byName["city"].Values[0].Str() != "BOSTON" {
		t.Errorf("frequency order: %v", byName["city"].Values[0])
	}
	if byName["constant"].Std != 1 {
		t.Errorf("constant column std should default to 1: %v", byName["constant"].Std)
	}
	if len(byName["constant"].Thresholds) > 1 {
		t.Errorf("constant thresholds: %v", byName["constant"].Thresholds)
	}
}

func TestExclusions(t *testing.T) {
	sp := NewSpace(mixedTable(t, 50), Options{Exclude: []string{"TEMP", "city"}})
	for _, a := range sp.Attrs {
		if a.Name == "temp" || a.Name == "city" {
			t.Errorf("excluded attr %s present", a.Name)
		}
	}
}

func TestThresholdsSortedUnique(t *testing.T) {
	sp := NewSpace(mixedTable(t, 500), Options{NumThresholds: 8})
	for _, a := range sp.Attrs {
		if a.Kind != Numeric {
			continue
		}
		for i := 1; i < len(a.Thresholds); i++ {
			if a.Thresholds[i] <= a.Thresholds[i-1] {
				t.Errorf("%s thresholds not strictly increasing: %v", a.Name, a.Thresholds)
				break
			}
		}
	}
}

func TestVectorStandardization(t *testing.T) {
	tbl := mixedTable(t, 200)
	sp := NewSpace(tbl, Options{})
	if sp.Dim() != 3 { // id, temp, constant
		t.Fatalf("dim: %d", sp.Dim())
	}
	// Mean of standardized coordinates should be ~0.
	sums := make([]float64, sp.Dim())
	var v []float64
	for r := 0; r < tbl.NumRows(); r++ {
		v = sp.Vector(r, v)
		for i, x := range v {
			sums[i] += x
		}
	}
	for i, s := range sums {
		if math.Abs(s/float64(tbl.NumRows())) > 1e-9 {
			t.Errorf("dim %d mean %v", i, s/float64(tbl.NumRows()))
		}
	}
}

func TestRowsSubset(t *testing.T) {
	tbl := mixedTable(t, 100)
	sp := NewSpace(tbl, Options{Rows: []int{0, 1, 2, 3}})
	a := sp.AttrByName("id")
	if a == nil || a.Max != 3 {
		t.Errorf("subset stats: %+v", a)
	}
}

func TestSampleCap(t *testing.T) {
	tbl := mixedTable(t, 1000)
	sp := NewSpace(tbl, Options{SampleCap: 10})
	if sp.AttrByName("id") == nil {
		t.Fatal("id attr missing")
	}
}

func TestNullColumnSkipped(t *testing.T) {
	tbl := engine.MustNewTable("t", engine.NewSchema("x", engine.TFloat, "y", engine.TFloat))
	for i := 0; i < 10; i++ {
		tbl.MustAppendRow(engine.Null, engine.NewFloat(float64(i)))
	}
	sp := NewSpace(tbl, Options{})
	if len(sp.Attrs) != 1 || sp.Attrs[0].Name != "y" {
		t.Errorf("all-null column should be skipped: %+v", sp.Attrs)
	}
}

func TestAttrByName(t *testing.T) {
	sp := NewSpace(mixedTable(t, 10), Options{})
	if sp.AttrByName("CITY") == nil {
		t.Error("case-insensitive AttrByName failed")
	}
	if sp.AttrByName("nope") != nil {
		t.Error("missing attr found")
	}
}
