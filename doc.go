// Package repro is a from-scratch Go reproduction of "A Demonstration of
// DBWipes: Clean as You Query" (Wu, Madden, Stonebraker — VLDB 2012): an
// end-to-end ranked provenance system for interactively detecting,
// understanding, and cleaning errors in aggregate query results.
//
// The system lives in internal/ (see DESIGN.md for the full inventory):
//
//   - internal/core — the ranked provenance pipeline (the paper's
//     contribution): Debug(query, S, D', ε) → ranked predicates,
//     plus the clean-and-requery loop.
//   - internal/engine, expr, sqlparse, agg, exec — the SQL substrate
//     with fine-grained provenance capture.
//   - internal/influence, cleaner, subgroup, dtree, predicate, ranker —
//     the pipeline stages.
//   - internal/datasets — synthetic FEC and Intel Lab generators with
//     ground-truth anomaly labels.
//   - internal/baseline — full provenance / top-k influence / exhaustive
//     search comparison points.
//   - internal/server, viz — the web dashboard and plotting.
//
// Executables: cmd/dbwipes (web demo), cmd/dbwipes-cli, cmd/datagen,
// cmd/experiments (regenerates every figure + the quantitative
// evaluation). Runnable walkthroughs live in examples/.
//
// The benchmarks in bench_test.go regenerate the data behaviour behind
// each figure of the paper; run them with
//
//	go test -bench=. -benchmem
package repro
