// Package repro is a from-scratch Go reproduction of "A Demonstration of
// DBWipes: Clean as You Query" (Wu, Madden, Stonebraker — VLDB 2012): an
// end-to-end ranked provenance system for interactively detecting,
// understanding, and cleaning errors in aggregate query results.
//
// The system lives in internal/ (see DESIGN.md for the full inventory):
//
//   - internal/core — the ranked provenance pipeline (the paper's
//     contribution): Debug(query, S, D', ε) → ranked predicates,
//     plus the clean-and-requery loop.
//   - internal/engine, expr, sqlparse, agg, exec — the SQL substrate
//     with fine-grained provenance capture.
//   - internal/influence, cleaner, subgroup, dtree, predicate, ranker —
//     the pipeline stages.
//   - internal/datasets — synthetic FEC and Intel Lab generators with
//     ground-truth anomaly labels.
//   - internal/baseline — full provenance / top-k influence / exhaustive
//     search comparison points.
//   - internal/server, viz — the web dashboard and plotting.
//
// Executables: cmd/dbwipes (web demo), cmd/dbwipes-cli, cmd/datagen,
// cmd/experiments (regenerates every figure + the quantitative
// evaluation). Runnable walkthroughs live in examples/.
//
// # The columnar scoring fast path
//
// Interactive latency rests on scoring thousands of candidate
// predicates against the suspect lineage without re-touching boxed
// values. A Debug run therefore decodes everything it needs once, up
// front, into flat read-only state, and the whole scoring pipeline runs
// on bitmaps and float slices:
//
//   - internal/bitset — dense []uint64 bitmaps over source row ids;
//     lineage sets, predicate match sets and culpability sets intersect
//     and count at word granularity.
//   - internal/engine — per-table typed column views (FloatView,
//     DictView): each column decoded once to []float64 + NULL bitmap or
//     dictionary codes, shared by every downstream consumer.
//   - internal/exec — Result.AggArgFloats evaluates an aggregate's
//     argument expression once per source row into an ArgView;
//     Result.LineageBits/GroupLineageBits expose provenance as bitsets.
//   - internal/predicate — Index caches a full-table match mask per
//     clause; a predicate match is the AND of its clause masks
//     (Predicate.MatchingBitset), bit-for-bit equal to MatchesRow.
//   - internal/agg — FloatRemovable: leave-out aggregate evaluation fed
//     straight from the flat argument column, no boxing.
//   - internal/influence — Scorer ties these together: ε-without-a-set
//     is "intersect match mask with each group's lineage span, gather
//     floats, ask the removable state", zero steady-state allocations.
//   - internal/ranker — candidates score and prune in parallel across a
//     worker pool; the prepared context is read-only shared state.
//   - internal/dtree — split search streams the same typed views.
//
// Future backends plug in underneath this layer: a sharded or
// multi-table engine only needs to produce the same flat views
// (argument columns, lineage bitsets, clause masks) per shard, and the
// scoring algebra above composes by OR-ing bitsets and merging
// removable states.
//
// The benchmarks in bench_test.go regenerate the data behaviour behind
// each figure of the paper; run them with
//
//	make bench    # go test -run='^$' -bench=. -benchmem ./...
package repro
