// Package repro is a from-scratch Go reproduction of "A Demonstration of
// DBWipes: Clean as You Query" (Wu, Madden, Stonebraker — VLDB 2012): an
// end-to-end ranked provenance system for interactively detecting,
// understanding, and cleaning errors in aggregate query results.
//
// The system lives in internal/ (see DESIGN.md for the full inventory):
//
//   - internal/core — the ranked provenance pipeline (the paper's
//     contribution): Debug(query, S, D', ε) → ranked predicates,
//     plus the clean-and-requery loop.
//   - internal/engine, expr, sqlparse, agg, exec — the SQL substrate
//     with fine-grained provenance capture.
//   - internal/influence, cleaner, subgroup, dtree, predicate, ranker —
//     the pipeline stages.
//   - internal/datasets — synthetic FEC and Intel Lab generators with
//     ground-truth anomaly labels.
//   - internal/baseline — full provenance / top-k influence / exhaustive
//     search comparison points.
//   - internal/server, viz — the web dashboard and plotting.
//
// Executables: cmd/dbwipes (web demo), cmd/dbwipes-cli, cmd/datagen,
// cmd/experiments (regenerates every figure + the quantitative
// evaluation). Runnable walkthroughs live in examples/.
//
// # The columnar scoring fast path
//
// Interactive latency rests on scoring thousands of candidate
// predicates against the suspect lineage without re-touching boxed
// values. A Debug run therefore decodes everything it needs once, up
// front, into flat read-only state, and the whole scoring pipeline runs
// on bitmaps and float slices:
//
//   - internal/bitset — dense []uint64 bitmaps over source row ids;
//     lineage sets, predicate match sets and culpability sets intersect
//     and count at word granularity.
//   - internal/engine — per-table typed column views (FloatView,
//     DictView): each column decoded once into per-segment chunks of
//     float64s + NULL words or dictionary codes, shared by every
//     downstream consumer.
//   - internal/exec — Result.AggArgFloats evaluates an aggregate's
//     argument expression once per source row into an ArgView;
//     Result.LineageBits/GroupLineageBits expose provenance as bitsets.
//   - internal/predicate — Index caches a full-table match mask per
//     clause; a predicate match is the AND of its clause masks
//     (Predicate.MatchingBitset), bit-for-bit equal to MatchesRow.
//   - internal/agg — FloatRemovable: leave-out aggregate evaluation fed
//     straight from the flat argument column, no boxing.
//   - internal/influence — Scorer ties these together: ε-without-a-set
//     is "intersect match mask with each group's lineage span, gather
//     floats, ask the removable state", zero steady-state allocations.
//   - internal/ranker — candidates score and prune in parallel across a
//     worker pool; the prepared context is read-only shared state.
//   - internal/dtree — split search streams the same typed views.
//
// Future backends plug in underneath this layer: the segmented engine
// below already demonstrates the contract — it produces the same views
// (argument columns, lineage bitsets, clause masks) as per-segment
// chunks, and the scoring algebra above composes by concatenating
// word-aligned chunks, OR-ing bitsets and merging removable states.
//
// # The vectorized query executor
//
// The same columnar substrate now runs the query half of the loop.
// exec.RunOn keeps two implementations: a boxed reference scan (the
// oracle — row materialization, per-row WHERE interpretation, string
// group keys) and a vectorized shard-parallel pipeline that grouped
// statements take by default:
//
//   - WHERE lowers onto predicate.Index clause masks: a comparison
//     between a column and a constant becomes a cached bitmap, and the
//     tree combines with Kleene-logic (TRUE,FALSE) mask pairs so
//     NOT/NULL semantics survive the translation (exec/filter.go).
//     Trees with non-lowerable nodes (LIKE, arithmetic, column-column)
//     fall back to one per-row expr.EvalBool pass that fills the same
//     bitmap.
//   - Group keys are integers, not strings: dictionary codes for string
//     columns, canonical float bits for numeric columns, and compiled
//     zero-alloc evaluators (expr.Compile) for computed keys; a single
//     string-column key uses a dense code-indexed slot table instead of
//     a hash map.
//   - Aggregate arguments stream from engine.FloatView float slices
//     into the states through agg.FloatAdder — no boxing per row.
//   - The row space splits across a worker pool; per-shard group states
//     merge in shard order via agg.Merger, which reproduces the
//     sequential scan's group order, lineage order, and FirstRow
//     exactly.
//
// Statements the pipeline cannot express exactly — DISTINCT aggregates,
// more than four group-by columns, string-valued computed keys — take
// the reference scan instead (Result.Plan says which path ran and why).
// A randomized property test executes generated statements on both
// paths and requires identical output, group order, and lineage.
//
// # Statistics-free query planning
//
// The planner never gathers statistics: every cardinality it uses is a
// popcount of a bitmap the executor was going to build anyway (in the
// spirit of janus-datalog's "greedy beats optimal, no statistics"
// result). Three layers compound:
//
//   - Greedy clause ordering (exec/filter.go). A WHERE whose root is an
//     AND chain is flattened and its conjuncts probed for estimated
//     survivor counts — cached clause-mask popcounts from
//     predicate.Index, O(1) after the mask exists — then evaluated most
//     selective first. The running mask ANDs each conjunct with a fused
//     AND+popcount kernel and SHORT-CIRCUITS the rest of the chain the
//     moment it empties, so the remaining clause masks are neither
//     fetched nor intersected. The ordering rule: a conjunct
//     participates only if the probe can bound it exactly the way full
//     lowering would evaluate it — greedy refuses a chain precisely
//     when plain lowering would refuse it, falling back first to
//     left-to-right lowering and then to the per-row scalar path, so
//     reordering can never suppress an error (or a mask-geometry
//     refusal) that the unordered path would have surfaced. Under 3VL
//     this is sound because the root AND chain needs only the TRUE
//     masks: T(chain) = ∩ T(conjunct), which is order-independent.
//     Result.Plan records the decision — FilterConjuncts (chain
//     length), FilterOrder (the permutation chosen), and
//     FilterShortCircuited (conjuncts never materialized); a chain the
//     planner refused shows FilterConjuncts == 0 with WhereLowered
//     saying which fallback ran.
//   - Selectivity-adaptive scan shards (exec/vector.go). After the
//     filter mask and zone-map skipping are known, the shard split
//     balances SURVIVING-ROW popcount rather than raw row ranges:
//     segments the zone maps emptied contribute nothing, and a hot
//     segment holding more than one shard's share of survivors is
//     subdivided on bitset-word boundaries — so a point query whose
//     survivors all sit in one segment no longer serializes onto one
//     busy shard while the rest idle. Boundaries stay word-aligned
//     (segment boundary ≡ word boundary), so per-shard chunk and mask
//     state still composes by word slicing.
//   - Batch mask kernels and incremental ORDER BY (internal/bitset,
//     exec). AndCountWith/AndNotOf/AnyWords/CountWords fuse the
//     intersect-and-count loops the filter and zone-skip paths run per
//     query. Advance maintains sorted group output incrementally: the
//     carried result's order is merged with a re-sort of only the
//     changed/new groups (changed = lineage grew this advance) instead
//     of re-sorting every group per batch. The merge engages only when
//     the sort keys are totally ordered — any NaN key or incomparable
//     pair in either the carried or current result forces the full
//     re-sort, because sort.SliceStable's comparator is intransitive
//     exactly there — and ties break by group scan position, matching
//     the stable sort bit for bit. Plan.SortCarried says which path
//     ran.
//
// /api/stats aggregates the planner counters across queries
// (filters_ordered, conjuncts_skipped, sorts_carried);
// BenchmarkSelectiveFilter and BenchmarkAdvanceOrderBy pin the
// optimizations themselves, not just their timings — the selective
// filter bench fails if the short-circuit stops engaging, the advance
// bench if the merge does. The differential harnesses in
// internal/exec/planner_test.go hold every ordering and carry decision
// bit-identical to left-to-right evaluation and the boxed scalar
// oracle.
//
// # Residual predicates and mixed-connective ordering
//
// Partial lowering extends the greedy AND chain to predicates that are
// only PARTLY index-shaped (exec/filter.go). A chain mixing lowerable
// comparisons with non-lowerable conjuncts (LIKE, computed arithmetic)
// no longer abandons the whole WHERE to per-row evaluation: the
// lowerable conjuncts fold into a running TRUE mask as before, and each
// residual conjunct is evaluated per row ONLY on the bits of its
// eligibility mask — the rows with no source-earlier known-FALSE
// conjunct, walked with bitset.Iter over the unrolled word kernels.
// That eligibility set is exactly the set of rows the scalar
// evaluator's AND short-circuit would reach (FALSE short-circuits,
// NULL does not), so error presence is preserved, not just values; the
// chain still short-circuits, but on the eligibility mask emptying
// rather than the pass mask, for the same reason. Reordering happens
// only within maximal runs of lowered conjuncts between residuals,
// keeping every guard relation intact. OR chains order too: disjuncts
// lower to TRUE masks, union largest-first with a fused OR+popcount,
// and stop the moment the union fills. Plan.ResidualConjuncts and
// Plan.ResidualRows record the per-row work actually paid, and
// Plan.FilterFallback carries a canonical reason vocabulary ("filter:
// non-lowerable predicate shape" / "predicate index geometry mismatch"
// / "lowering disabled") shared by the greedy and left-to-right paths.
//
// Below the planner, the hot word loops are hardware-shaped
// (internal/bitset, internal/agg): And/AndNot/Or and the fused count
// kernels run 4-wide unrolled, and a GROUP BY-free aggregation whose
// arguments all fold as floats skips scanRow entirely — agg.FoldMasked
// folds each segment chunk under the per-word effective mask (filter
// &^ null), switching between set-bit iteration and a dense 64-lane
// scan at a measured popcount crossover, in ascending row order so
// float accumulation stays bit-identical to the scalar fold
// (Plan.MaskedAgg). FuzzResidualFilterParity drives arbitrary parsed
// predicates through buildFilter against the per-row EvalBool oracle;
// /api/stats adds filters_residual and residual_rows; and
// BenchmarkResidualFilter, BenchmarkOrChainShortCircuit,
// BenchmarkMaskedAggregation and BenchmarkRetentionOrderBy pin the
// optimizations — the residual bench fails if the path stops engaging
// or drops under 3x the boxed-WHERE fallback.
//
// # Incremental maintenance and streaming ingest
//
// The paper's motivating scenario is continuous monitoring: readings
// keep arriving and the analyst re-runs the aggregate query and Debug
// over the growing table. Every layer above is therefore maintained
// incrementally under appends instead of being rebuilt from row 0:
//
//   - internal/engine — storage is SEGMENTED (see the next section):
//     sealed fixed-size segments plus a growable tail. Table.AppendBatch
//     is copy-on-write: it returns a new table version sharing every
//     sealed segment by pointer and the tail arrays by aliasing, so
//     in-flight queries keep an immutable snapshot, never observe a
//     half-appended batch, and no append ever copies a whole column;
//     DB.Append republishes the grown version atomically.
//     FloatView/DictView decode sealed segments once into chunks owned
//     by the segment and extend only the tail decoder by the appended
//     suffix — dictionary codes are append-stable (first-appearance
//     order) — and hand out immutable per-version snapshot windows.
//   - internal/predicate — Index implements engine.RowSynced (the
//     row-stamped invalidation hook of Table.AuxLoadOrStore): cached
//     clause masks and non-NULL masks are per-segment word arrays
//     extended independently from the matching view chunks, and queries
//     request masks stamped to their own snapshot's length and base
//     (ClauseBitsAtBase), so a scan mid-append — or racing a retention
//     pass — never sees a mask of the wrong geometry.
//   - internal/exec — Advance(res, grown) re-executes a statement over a
//     grown table version by folding only the appended rows into copies
//     of the previous result's group states (Clone+Merge state copy,
//     shared lineage prefixes), then re-materializing HAVING/ORDER
//     BY/LIMIT over the groups: O(batch + groups) per cycle instead of
//     an O(n) rescan. Lineage bitsets and argument views carry across
//     the advance with prefix reuse, so a following Debug
//     (influence.Scorer) also skips the unchanged prefix.
//   - internal/server — POST /api/append ingests JSON row batches
//     through the copy-on-write path, and a repeated query on an
//     unchanged statement advances the session's cached result
//     incrementally. Sessions hold a per-session mutex across handler
//     bodies and the session map is bounded (LRU cap + idle TTL).
//
// Group-key equality is pinned to engine.Equal everywhere: Value.Key
// and the executor's canonical float slots both collapse -0.0 into
// +0.0 (and all NaNs into one key), so the scalar and vectorized paths
// group identically.
//
// BenchmarkStreamingAppendQuery measures the append-then-requery cycle:
// per-batch cost is independent of total table size on the incremental
// path, against an O(table) full re-run baseline.
//
// # Incremental Debug (streaming explanation maintenance)
//
// The other half of the monitoring loop — the Debug call itself — is
// also maintained across append batches. core.DebugAdvance(prev, req)
// picks a previous Debug's analysis up on an advanced result instead of
// rebuilding the scoring state from row 0:
//
//   - internal/influence — AdvanceScorer extends the carried Scorer by
//     the appended suffix: per-group lineage bitsets and the flat
//     argument view come from the advanced result's carried caches, and
//     the F union reuses the previous words (appends only touch words
//     from the old length on). The advanced Scorer is bit-identical to
//     one built from scratch; influence.RankWithScorer re-ranks LOO
//     influence through it.
//   - internal/predicate — the Debug chain owns one clause-mask Index,
//     carried in the debug state and rebased onto each grown version
//     (Index.SyncRows), so rescoring a carried candidate decodes only
//     the appended rows into its masks. It is deliberately NOT the
//     family-shared predicate.Shared index (which the executor's
//     bounded WHERE lowering uses): candidate thresholds churn per
//     re-expansion and that cache never evicts, so the carried index
//     lives and dies with the analysis chain, capped in size.
//   - internal/ranker — RankAllCarry returns a RankerState: every
//     ranked predicate with its frozen target set and score. A later
//     Rescore runs the same worker-pool scoring/pruning/merge mechanics
//     over the carried candidates against the advanced context and
//     reports the score drift.
//
// The carry/re-expand state machine (recorded in DebugResult.Plan):
//
//   - carried — drift stayed within Options.DriftThreshold: the carried
//     predicates, rescored exactly against the grown table, ARE the
//     answer; the learners (subgroup discovery, tree induction) do not
//     run at all.
//   - reexpanded — drift exceeded the threshold (or a previously-ranked
//     predicate became vacuous, which counts as infinite drift): the
//     learners re-run over the advanced preprocessing — stage for
//     stage identical to a from-scratch Debug, so with DriftThreshold
//     < 0 (always re-expand) DebugAdvance is the differential-test
//     oracle's equal.
//   - full — conditions the carry cannot express: no carried state, a
//     changed statement/metric/aggregate, a non-advanceable aggregate
//     (DISTINCT), a non-grown table. Plan.Fallback says why.
//
// Debug and DebugAdvance share their stage functions (preprocess,
// featurize, clean, enumerate, rank), so the incremental path cannot
// drift from the full pipeline; the randomized differential harness in
// internal/core/advance_test.go pins DebugAdvance to from-scratch
// Debug — ε, lineage, influence ranking, candidate counts, ranked
// explanations and scores — at every step of random append chains, at
// forced shard counts, with the carried structures differentially
// tested one layer down (influence, ranker) as well.
//
// BenchmarkStreamingDebug measures the append + advance + re-Debug
// cycle against append + fresh run + fresh Debug: incremental cost
// stays roughly flat across base table sizes while the rebuild
// baseline grows with the table.
//
// # Segmented storage and retention (bounded-memory streams)
//
// The storage spine is built from fixed-size row segments — 64Ki rows
// by default, any power of two >= 64 (engine.MinSegmentBits), chosen so
// a segment boundary is ALWAYS a bitset word boundary. A table version
// is an ordered list of sealed segments (immutable, exactly SegRows
// rows) plus a growable tail; appends only ever touch the tail, and
// sealing hands the tail arrays to a new segment by reference. Decoded
// column chunks (floats + NULL words, dictionary codes) and the
// predicate index's mask chunks live per segment, so every derived
// structure shares the segment's lifetime, and the vectorized executor
// shards its scan on segment boundaries (a shard is a whole number of
// segments), so shard state aligns with chunk boundaries instead of
// re-partitioning flat arrays per call.
//
// Segments are also the unit of retention. DB.Retain /
// Table.RetainTail drop whole head segments past a row-count or
// age-column horizon and republish the retained version, giving an
// unbounded append stream a bounded resident window
// (examples/sensor_stream runs the monitoring loop forever at a
// retained-segment plateau; Table.MemStats and the server's /api/stats
// report the footprint). Dropping k segments rebases every surviving
// row id down by k*SegRows — a multiple of 64, which is the ROW-ID
// REBASE CONTRACT carried incremental state relies on:
//
//   - structures keyed by value, not row id — aggregate states, group
//     keys, dictionary codes, per-segment view and mask chunks — carry
//     unchanged (the predicate index just drops its head chunks);
//   - row-id-bearing bitmaps (lineage bitsets, argument NULL words, the
//     scorer's F union) rebase by dropping whole leading words
//     (bitset.ShiftDownWords) when nothing they reference was dropped:
//     exec.Advance verifies every carried group's first row and
//     earliest lineage row sit past the horizon (true whenever the
//     statement's WHERE excludes the dropped window) and then rebases
//     by pure id translation, keeping Plan.Incremental;
//   - otherwise the carried state is unusable and Advance re-runs the
//     statement over the retained window, recording why in
//     Plan.Fallback ("retention: ..."). core.DebugAdvance never carries
//     a RANKING across a horizon — the fingerprints that prove "same
//     question" are written in row ids — so it re-expands (or falls
//     back) with the reason recorded, while the scorer and result
//     caches underneath still rebase where legal
//     (influence.AdvanceScorer word-shifts its carried F union when the
//     suspect groups' identities survive the shift).
//
// Stale snapshots taken before a retention pass stay readable (their
// segments are alive until the last reader drops them), but their
// dictionary views degrade to the boxed path and lowered filters
// refuse their base — correctness never depends on a superseded
// window. The differential harnesses drive append chains with batch
// sizes landing exactly on, one under and one over segment boundaries,
// interleaved with randomized retention, at the minimum segment size —
// segmented executor, Scorer and DebugAdvance results stay
// bit-identical to the flat scalar oracle at every step.
//
// BenchmarkSegmentedAppend shows flat per-batch append cost across
// base sizes; BenchmarkRetention shows the bounded retained footprint
// (retained_MB / retained_segs plateau) under an unbounded stream.
//
// # Request lifecycle: cancellation, deadlines, admission control
//
// Interactive debugging lives or dies on tail latency, so every
// long-running layer is cancellable and the server degrades gracefully
// under load instead of stalling. A context.Context threads from the
// HTTP request down through the whole stack, polled at bounded
// granularity (every 4096 rows per scan shard, per candidate in the
// ranker's scoring pool, per group in the LOO influence pass, at every
// stage boundary of core.Debug/DebugAdvance, and before — never after —
// the store's WAL write acknowledges an append).
//
// The CANCELLATION CONTRACT is that cancellation never corrupts carried
// state: an operation interrupted at any checkpoint leaves the state it
// was fed (cached exec results, debug analyses, the published table
// version) either untouched or fully published, so an uncancelled retry
// is bit-identical to a from-scratch run. Concretely, exec.AdvanceCtx
// un-claims its input result on every post-claim error; store.AppendCtx
// checks the context only before the WAL write, so an acknowledged
// batch is never half-durable (cancel-before-publish-or-not-at-all);
// core.DebugAdvance leaves the previous analysis reusable; and
// ranker.Rescore leaves the carried ranking untouched on error.
//
// internal/chaos pins the contract the same way internal/store pins
// durability: not by sampling timings but by enumerating failpoints.
// chaos.CancelAfter(n) is a context whose Err() trips Canceled on the
// nth poll — the cancellation twin of FaultFS.FailAt — and the matrix
// tests replay each carried operation once per failpoint, asserting the
// retry matches a from-scratch oracle bit for bit. A deadline storm and
// a concurrent chaos soak (ingest + queries + debug + retention under
// filesystem faults, tight deadlines and client aborts) add the
// system-level pins: every request classified exactly once, no
// goroutine leaks (internal/leakcheck), bounded memory, and
// oracle-identical re-queries afterwards (`make test-chaos`).
//
// On top, internal/server enforces per-request deadlines (class
// defaults via server.Limits, per-request `?timeout=` capped by
// MaxTimeout) and admission control: heavy operations (query, debug,
// clean, reset) pass a bounded semaphore with a bounded wait queue,
// and overload sheds with 429 + Retry-After rather than queuing
// without bound; a fail-stopped durable table sheds ingest with 503 +
// Retry-After while queries keep serving. Deadline expiry maps to 504,
// client disconnect to 499, and per-endpoint counters
// (in-flight/completed/shed/deadline-exceeded/cancelled, exposed at
// /api/stats) classify every request exactly once. Session locks are
// acquired with the request context, so a slow session holder turns
// into a 504 for the next request, not a pile-up. The knobs surface as
// dbwipes flags (-query-timeout, -debug-timeout, -max-heavy,
// -max-queue); cmd/datagen's feeder honors the shed responses with
// jittered exponential backoff under a retry budget.
//
// The benchmarks in bench_test.go regenerate the data behaviour behind
// each figure of the paper; run them with
//
//	make bench    # go test -run='^$' -bench=. -benchmem ./...
package repro
