// Multi-attribute group-by + PCA: the paper (§2.2.1) notes that when a
// query groups by more than two attributes, the dashboard lets the user
// pick two of them to plot — and proposes "plotting the two largest
// principal components against each other" as a richer view. This
// example runs a two-attribute group-by over the Intel data (mote ×
// hour), projects the per-group aggregate vectors with PCA, and shows
// that the failing motes' groups separate cleanly in PC space.
//
//	go run ./examples/multiattr_pca
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/viz"
)

func main() {
	db, _ := datasets.IntelDB(datasets.IntelConfig{Rows: 80_000, Seed: 13})
	sql := `SELECT moteid, bucket(epoch(ts), 3600) AS hr,
	               avg(temperature) AS avg_temp,
	               avg(voltage) AS avg_volt,
	               stddev(temperature) AS std_temp
	        FROM readings
	        GROUP BY moteid, bucket(epoch(ts), 3600)`
	res, err := core.Run(db, sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d (mote × hour) groups with 3 aggregates each\n\n", res.Table.NumRows())

	// Project every group's (avg_temp, avg_volt, std_temp) vector onto
	// the two largest principal components.
	proj, explained, err := core.PCAGroups(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCA explained variance: PC1=%.0f%% PC2=%.0f%%\n",
		100*explained[0], 100*explained[1])

	// Color the groups by whether their avg temperature is impossible.
	tempCol := res.Table.Schema().ColIndex("avg_temp")
	p := viz.Plot{
		Title:  "groups in PC space (# = avg_temp > 90F — the failing motes separate)",
		XLabel: "PC1", YLabel: "PC2", Width: 96, Height: 20,
	}
	anomalous := 0
	for r := 0; r < res.Table.NumRows(); r++ {
		cls := 0
		v := res.Table.Value(r, tempCol)
		if !v.IsNull() && v.Float() > 90 {
			cls = 1
			anomalous++
		}
		p.Points = append(p.Points, viz.Point{X: proj[r][0], Y: proj[r][1], Class: cls})
	}
	fmt.Println(p.ASCII())
	fmt.Printf("%d anomalous groups highlighted\n\n", anomalous)

	// The PCA view is a selection aid; the debug flow is unchanged.
	suspect, err := core.SuspectWhere(res, "avg_temp", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() > 90
	})
	if err != nil {
		log.Fatal(err)
	}
	dr, err := core.Debug(core.DebugRequest{
		Result:  res,
		AggItem: -1,
		Suspect: suspect,
		Metric:  errmetric.TooHigh{C: 70},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("why are those groups hot?")
	for i, e := range dr.Explanations[:minInt(3, len(dr.Explanations))] {
		fmt.Printf("  %d. %s\n", i+1, e.Scored)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
