// Sensor anomaly walkthrough — the paper's Figures 4 and 6 on the
// (synthetic) Intel Lab dataset:
//
//  1. plot avg/stddev of temperature in 30-minute windows,
//
//  2. highlight the suspiciously spread-out windows (S),
//
//  3. zoom into their raw tuples and highlight readings >100°F (D'),
//
//  4. get a ranked list of predicates — the winners blame the motes
//     with dying batteries (low voltage),
//
//  5. click the best predicate and watch the windows flatten.
//
//     go run ./examples/sensor_anomaly
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/viz"
)

func main() {
	db, truth := datasets.IntelDB(datasets.IntelConfig{Rows: 80_000, Seed: 11})
	fmt.Println("synthetic Intel Lab trace loaded; query:")
	fmt.Println(" ", datasets.IntelWindowSQL)

	res, err := core.Run(db, datasets.IntelWindowSQL)
	if err != nil {
		log.Fatal(err)
	}
	plotWindows(res, nil, "stddev(temperature) per 30-min window")

	// Figure 4, left: highlight high-stddev windows.
	suspect, err := core.SuspectWhere(res, "std_temp", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() > 10
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("S: %d windows with stddev > 10\n\n", len(suspect))

	// Figure 4, right: zoom in; D' = readings above 100F.
	dprime, err := core.ExamplesWhere(res, suspect, "temperature > 100")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("D': %d readings above 100F inside the suspect windows\n\n", len(dprime))

	// Figure 6: the ranked predicates.
	dr, err := core.Debug(core.DebugRequest{
		Result:   res,
		AggItem:  -1, // avg_temp
		Suspect:  suspect,
		Examples: dprime,
		Metric:   errmetric.TooHigh{C: 70},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ε = %.1f over %d lineage tuples; ranked predicates:\n", dr.Eps, len(dr.F))
	tr := datasets.NewTruth(truth)
	for i, e := range dr.Explanations {
		matched := e.Pred.MatchingRows(res.Source, dr.F)
		p, r, f1 := tr.Score(matched, dr.F)
		fmt.Printf("  %d. %s\n     score=%.3f Δε=%.0f%% tuples=%d  vs ground truth P/R/F1=%.2f/%.2f/%.2f\n",
			i+1, e.Pred, e.Score, 100*e.ErrImprovement, e.NumTuples, p, r, f1)
	}

	// Click the top predicate.
	cleaned, err := core.CleanAndRequery(res, dr.Explanations[0].Pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter cleaning with the top predicate:")
	plotWindows(cleaned, nil, "stddev(temperature) per 30-min window (cleaned)")
}

func plotWindows(res *exec.Result, suspect []int, title string) {
	stdCol := res.Table.Schema().ColIndex("std_temp")
	inS := map[int]bool{}
	for _, s := range suspect {
		inS[s] = true
	}
	p := viz.Plot{Title: title, XLabel: "w30", YLabel: "stddev", Width: 96, Height: 16}
	for r := 0; r < res.Table.NumRows(); r++ {
		v := res.Table.Value(r, stdCol)
		if v.IsNull() {
			continue
		}
		cls := 0
		if inS[r] {
			cls = 1
		}
		p.Points = append(p.Points, viz.Point{X: res.Table.Value(r, 0).Float(), Y: v.Float(), Class: cls})
	}
	fmt.Println(p.ASCII())
}
