// Sensor stream walkthrough — the paper's continuous-monitoring
// scenario: readings keep arriving from the motes and the analyst
// re-runs the Figure 4 window query and Debug over the growing table.
//
// This is the streaming counterpart of examples/sensor_anomaly. Each
// cycle appends one batch through the engine's copy-on-write ingest
// path (engine.DB.Append), advances the cached query result by folding
// in only the appended rows (exec.Advance — no rescan), and re-Debugs.
// The printed per-batch latency stays flat as the table grows: the
// append-then-requery cycle costs O(batch), not O(table).
//
//	go run ./examples/sensor_stream
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
)

const (
	baseRows  = 60_000
	batches   = 10
	batchRows = 2_000
)

func main() {
	// Generate the whole trace once, then replay its tail as live
	// batches against a table seeded with the first baseRows readings.
	full, _ := datasets.Intel(datasets.IntelConfig{Rows: baseRows + batches*batchRows, Seed: 11})
	ids := make([]int, baseRows)
	for i := range ids {
		ids[i] = i
	}
	db := engine.NewDB()
	db.Register(full.Select(ids))

	fmt.Printf("monitoring %d motes; base trace %d rows; query:\n  %s\n\n",
		54, baseRows, datasets.IntelWindowSQL)

	res, err := core.Run(db, datasets.IntelWindowSQL)
	if err != nil {
		log.Fatal(err)
	}
	report(res, 0, 0)

	for b := 0; b < batches; b++ {
		batch := make([][]engine.Value, 0, batchRows)
		for r := baseRows + b*batchRows; r < baseRows+(b+1)*batchRows; r++ {
			batch = append(batch, full.Row(r))
		}
		start := time.Now()
		grown, err := db.Append("readings", batch)
		if err != nil {
			log.Fatal(err)
		}
		res, err = exec.Advance(res, grown)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Plan.Incremental {
			log.Fatalf("batch %d did not advance incrementally: %+v", b, res.Plan)
		}
		report(res, b+1, time.Since(start))
	}
}

// report re-runs the monitoring check on the current result: highlight
// high-stddev windows, re-Debug, and print the top suspect predicate.
func report(res *exec.Result, batch int, cycle time.Duration) {
	suspect, err := core.SuspectWhere(res, "std_temp", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() > 10
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(suspect) == 0 {
		fmt.Printf("batch %2d: %7d rows, %4d windows, no suspect windows yet\n",
			batch, res.Source.NumRows(), res.NumRows())
		return
	}
	dprime, err := core.ExamplesWhere(res, suspect, "temperature > 100")
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	dr, err := core.Debug(core.DebugRequest{
		Result:   res,
		AggItem:  -1,
		Suspect:  suspect,
		Examples: dprime,
		Metric:   errmetric.TooHigh{C: 70},
	})
	if err != nil {
		log.Fatal(err)
	}
	top := "(none)"
	if len(dr.Explanations) > 0 {
		top = dr.Explanations[0].Pred.String()
	}
	fmt.Printf("batch %2d: %7d rows, %4d windows, %2d suspect  append+requery %s  debug %s  top: %s\n",
		batch, res.Source.NumRows(), res.NumRows(), len(suspect),
		cycle.Round(time.Microsecond), time.Since(t0).Round(time.Millisecond), top)
}
