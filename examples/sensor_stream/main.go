// Sensor stream walkthrough — the paper's continuous-monitoring
// scenario: readings keep arriving from the motes and the analyst
// re-runs the Figure 4 window query and Debug over the growing table.
//
// This is the streaming counterpart of examples/sensor_anomaly. Each
// cycle appends one batch through the engine's copy-on-write ingest
// path (engine.DB.Append), advances the cached query result by folding
// in only the appended rows (exec.Advance — no rescan), and advances
// the previous Debug analysis the same way (core.DebugAdvance): the
// carried scorer, lineage bitsets, argument view and scored predicates
// all extend by the appended suffix, and the learners only re-run when
// a carried predicate's score drifts. The printed per-batch latency
// stays flat as the table grows: the whole
// append → requery → re-debug cycle costs O(batch + lineage), not
// O(table).
//
//	go run ./examples/sensor_stream
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
)

const (
	baseRows  = 60_000
	batches   = 10
	batchRows = 2_000
)

func main() {
	// Generate the whole trace once, then replay its tail as live
	// batches against a table seeded with the first baseRows readings.
	full, _ := datasets.Intel(datasets.IntelConfig{Rows: baseRows + batches*batchRows, Seed: 11})
	ids := make([]int, baseRows)
	for i := range ids {
		ids[i] = i
	}
	db := engine.NewDB()
	db.Register(full.Select(ids))

	fmt.Printf("monitoring %d motes; base trace %d rows; query:\n  %s\n\n",
		54, baseRows, datasets.IntelWindowSQL)

	res, err := core.Run(db, datasets.IntelWindowSQL)
	if err != nil {
		log.Fatal(err)
	}
	var dbg *core.DebugResult
	dbg = report(res, dbg, 0, 0)

	for b := 0; b < batches; b++ {
		batch := make([][]engine.Value, 0, batchRows)
		for r := baseRows + b*batchRows; r < baseRows+(b+1)*batchRows; r++ {
			batch = append(batch, full.Row(r))
		}
		start := time.Now()
		grown, err := db.Append("readings", batch)
		if err != nil {
			log.Fatal(err)
		}
		res, err = exec.Advance(res, grown)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Plan.Incremental {
			log.Fatalf("batch %d did not advance incrementally: %+v", b, res.Plan)
		}
		dbg = report(res, dbg, b+1, time.Since(start))
	}
}

// report re-runs the monitoring check on the current result: highlight
// high-stddev windows, advance the previous Debug analysis (or run a
// fresh one on the first batch), and print the top suspect predicate.
// It returns the analysis so the next batch can advance it again.
func report(res *exec.Result, prev *core.DebugResult, batch int, cycle time.Duration) *core.DebugResult {
	suspect, err := core.SuspectWhere(res, "std_temp", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() > 10
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(suspect) == 0 {
		fmt.Printf("batch %2d: %7d rows, %4d windows, no suspect windows yet\n",
			batch, res.Source.NumRows(), res.NumRows())
		return prev
	}
	// No explicit D' examples: the high-influence set stands in,
	// derived fresh inside each pass. Explicit example rows are part of
	// the question's identity — listing different rows each batch would
	// (correctly) force the learners to re-run every time, since
	// carried rankings only answer an unchanged question.
	t0 := time.Now()
	dr, err := core.DebugAdvance(prev, core.DebugRequest{
		Result:  res,
		AggItem: -1,
		Suspect: suspect,
		Metric:  errmetric.TooHigh{C: 70},
	})
	if err != nil {
		log.Fatal(err)
	}
	top := "(none)"
	if len(dr.Explanations) > 0 {
		top = dr.Explanations[0].Pred.String()
	}
	fmt.Printf("batch %2d: %7d rows, %4d windows, %2d suspect  append+requery %s  debug %s [%s]  top: %s\n",
		batch, res.Source.NumRows(), res.NumRows(), len(suspect),
		cycle.Round(time.Microsecond), time.Since(t0).Round(time.Millisecond), dr.Plan.Mode, top)
	return dr
}
