// Sensor stream walkthrough — the paper's continuous-monitoring
// scenario: readings keep arriving from the motes and the analyst
// re-runs the Figure 4 window query and Debug over the growing table,
// forever, at bounded memory.
//
// This is the streaming counterpart of examples/sensor_anomaly. Each
// cycle appends one batch through the engine's copy-on-write ingest
// path (engine.DB.Append), advances the cached query result by folding
// in only the appended rows (exec.Advance — no rescan), and advances
// the previous Debug analysis the same way (core.DebugAdvance): the
// carried scorer, lineage bitsets, argument view and scored predicates
// all extend by the appended suffix, and the learners only re-run when
// a carried predicate's score drifts.
//
// On top of the streaming loop, a retention policy (engine.DB.Retain)
// drops whole head segments past a row horizon every few batches, so
// the retained segment count — and with it resident memory — plateaus
// while the stream keeps growing. Crossing a retention horizon rebases
// row ids; carried results either rebase (the WHERE-bounded case) or
// re-run over the retained window with the reason recorded in the
// plan, and the loop keeps advancing either way. The printed per-batch
// latency stays flat as the STREAM grows because the WINDOW doesn't:
// the cycle costs O(batch + window), not O(stream).
//
// PR 6 makes the stream durable: every batch goes through
// internal/store's write-ahead log before it is acknowledged, sealed
// segments spill to checksummed files, and retention is committed via
// an atomic manifest. The walkthrough ends by closing the store
// (surfacing any deferred fsync error) and reopening the data
// directory to show crash-style recovery handing back the exact
// retained window.
//
//	go run ./examples/sensor_stream
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/store"
)

const (
	baseRows  = 60_000
	batches   = 14
	batchRows = 2_000
	// retainRows keeps roughly the newest 40k readings: segments wholly
	// before the horizon are dropped every retainEvery batches.
	retainRows  = 40_000
	retainEvery = 3
	// segBits sizes segments at 4Ki rows so the demo's modest stream
	// spans many segments; production streams keep the 64Ki default.
	segBits = 12
)

func main() {
	// Generate the whole trace once, then replay its tail as live
	// batches against a table seeded with the first baseRows readings.
	full, _ := datasets.Intel(datasets.IntelConfig{Rows: baseRows + batches*batchRows, Seed: 11})

	// The stream is durable: a segment store under a scratch directory
	// WAL-logs every batch before acknowledging it and spills sealed
	// segments to checksummed files.
	dir, err := os.MkdirTemp("", "sensor_stream-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{SyncEvery: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.CreateTable("readings", full.Schema(), segBits); err != nil {
		log.Fatal(err)
	}
	seed := make([][]engine.Value, baseRows)
	for i := range seed {
		seed[i] = full.Row(i)
	}
	if _, err := st.Append("readings", seed); err != nil {
		log.Fatal(err)
	}
	db := st.Eng()

	fmt.Printf("monitoring %d motes; base trace %d rows; %d-row segments, retain ~%d rows; durable dir %s; query:\n  %s\n\n",
		54, baseRows, 1<<segBits, retainRows, dir, datasets.IntelWindowSQL)

	res, err := core.Run(db, datasets.IntelWindowSQL)
	if err != nil {
		log.Fatal(err)
	}
	var dbg *core.DebugResult
	dbg = report(res, dbg, 0, 0, "")

	for b := 0; b < batches; b++ {
		batch := make([][]engine.Value, 0, batchRows)
		for r := baseRows + b*batchRows; r < baseRows+(b+1)*batchRows; r++ {
			batch = append(batch, full.Row(r))
		}
		start := time.Now()
		grown, err := st.Append("readings", batch)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if (b+1)%retainEvery == 0 {
			retained, stats, err := st.Retain("readings", engine.RetentionPolicy{MaxRows: retainRows})
			if err != nil {
				log.Fatal(err)
			}
			if stats.DroppedSegments > 0 {
				note = fmt.Sprintf("dropped %d segs", stats.DroppedSegments)
			}
			grown = retained
		}
		res, err = exec.Advance(res, grown)
		if err != nil {
			log.Fatal(err)
		}
		// Between horizons every batch must advance incrementally;
		// crossing one may rebase or re-run (reason recorded).
		if !res.Plan.Incremental && res.Plan.Fallback == "" {
			log.Fatalf("batch %d fell back without a reason: %+v", b, res.Plan)
		}
		dbg = report(res, dbg, b+1, time.Since(start), note)
	}

	// Shut the stream down and prove the data survived. Close flushes
	// the WAL and reports any deferred fsync error — ignoring it would
	// mean exiting 0 with the tail not actually on disk.
	final, err := db.Table("readings")
	if err != nil {
		log.Fatal(err)
	}
	wantVer, wantBase, wantRows := final.Version(), final.Base(), final.NumRows()
	if err := st.Close(); err != nil {
		log.Fatalf("close store: %v", err)
	}
	re, err := store.Open(dir, store.Options{SyncEvery: 1})
	if err != nil {
		log.Fatalf("reopen store: %v", err)
	}
	rec, err := re.Eng().Table("readings")
	if err != nil {
		log.Fatalf("recovery lost the table: %v", err)
	}
	if rec.Version() != wantVer || rec.Base() != wantBase || rec.NumRows() != wantRows {
		log.Fatalf("recovery mismatch: got version/base/rows %d/%d/%d, want %d/%d/%d",
			rec.Version(), rec.Base(), rec.NumRows(), wantVer, wantBase, wantRows)
	}
	ts := re.Stats().Tables["readings"]
	fmt.Printf("\nrestart: recovered stream rows [%d, %d) from %d sealed segment files + WAL tail — bit-identical window, nothing lost\n",
		rec.Base(), rec.Version(), ts.SealedOnDisk)
	if err := re.Close(); err != nil {
		log.Fatalf("close reopened store: %v", err)
	}
}

// report re-runs the monitoring check on the current result: highlight
// high-stddev windows, advance the previous Debug analysis (or run a
// fresh one on the first batch), and print the top suspect predicate
// plus the retained-storage footprint. It returns the analysis so the
// next batch can advance it again.
func report(res *exec.Result, prev *core.DebugResult, batch int, cycle time.Duration, note string) *core.DebugResult {
	segs, bytes := res.Source.MemStats()
	suspect, err := core.SuspectWhere(res, "std_temp", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() > 10
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(suspect) == 0 {
		fmt.Printf("batch %2d: stream %7d window %6d rows, %3d segs %5.1f MB, no suspect windows yet\n",
			batch, res.Source.Version(), res.Source.NumRows(), segs, float64(bytes)/(1<<20))
		return prev
	}
	// No explicit D' examples: the high-influence set stands in,
	// derived fresh inside each pass. Explicit example rows are part of
	// the question's identity — listing different rows each batch would
	// (correctly) force the learners to re-run every time, since
	// carried rankings only answer an unchanged question.
	t0 := time.Now()
	dr, err := core.DebugAdvance(prev, core.DebugRequest{
		Result:  res,
		AggItem: -1,
		Suspect: suspect,
		Metric:  errmetric.TooHigh{C: 70},
	})
	if err != nil {
		log.Fatal(err)
	}
	top := "(none)"
	if len(dr.Explanations) > 0 {
		top = dr.Explanations[0].Pred.String()
	}
	fmt.Printf("batch %2d: stream %7d window %6d rows, %3d segs %5.1f MB, %2d suspect  cycle %s  debug %s [%s] %s  top: %s\n",
		batch, res.Source.Version(), res.Source.NumRows(), segs, float64(bytes)/(1<<20), len(suspect),
		cycle.Round(time.Microsecond), time.Since(t0).Round(time.Millisecond), dr.Plan.Mode, note, top)
	return dr
}
