// Custom error metric: the paper stresses that "the user's notion of
// error is often different than the pre-defined criteria". The Metric
// interface makes ε pluggable — this example debugs a *count* anomaly
// ("why do some days have absurdly many donations?") with a bespoke
// metric that penalizes deviation from a rolling expectation, something
// no stock metric expresses.
//
//	go run ./examples/custom_metric
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/errmetric"
)

// relDeviation is a user-defined ε: the summed *relative* deviation of
// each suspect value from an expected baseline, ignoring deviations
// under 25%. Direction 0: both inflated and deflated counts are errors.
type relDeviation struct {
	Expected float64
}

func (relDeviation) Name() string { return "reldev" }

func (m relDeviation) Eval(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		if math.IsNaN(v) || m.Expected == 0 {
			continue
		}
		d := math.Abs(v-m.Expected) / m.Expected
		if d > 0.25 {
			sum += d - 0.25
		}
	}
	return sum
}

func (relDeviation) Direction() int { return 0 }

func (m relDeviation) String() string { return fmt.Sprintf("reldev(expected=%g)", m.Expected) }

// The interface is verified at compile time.
var _ errmetric.Metric = relDeviation{}

func main() {
	// Inject a burst of duplicate-looking small donations on one day by
	// generating a spike with an unusual occupation signature.
	db, _ := datasets.FECDB(datasets.FECConfig{Rows: 100_000, Seed: 9})

	res, err := core.Run(db, `SELECT day, count(*) AS n FROM donations WHERE candidate = 'McCain' GROUP BY day ORDER BY day`)
	if err != nil {
		log.Fatal(err)
	}

	// Typical day volume = median count.
	var counts []float64
	nCol := res.Table.Schema().ColIndex("n")
	for r := 0; r < res.Table.NumRows(); r++ {
		counts = append(counts, res.Table.Value(r, nCol).Float())
	}
	expected := errmetric.SuggestReference(counts)
	fmt.Printf("typical daily donation count: %.0f\n", expected)

	// Suspect: days with far more donations than typical (the
	// reattribution burst inflates counts around day 500).
	suspect, err := core.SuspectWhere(res, "n", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() > expected*2.5
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(suspect) == 0 {
		log.Fatal("no inflated days found; try another seed")
	}
	fmt.Printf("S: %d days with >2.5x typical volume\n", len(suspect))

	dr, err := core.Debug(core.DebugRequest{
		Result:  res,
		AggItem: -1,
		Suspect: suspect,
		Metric:  relDeviation{Expected: expected}, // the custom ε
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ε = %.2f; explanations under the custom metric:\n", dr.Eps)
	for i, e := range dr.Explanations {
		fmt.Printf("  %d. %s\n", i+1, e.Scored)
	}
	fmt.Println("\n(no D' was given: the pipeline bootstrapped candidates from leave-one-out influence alone)")
}
