// FEC walkthrough — the paper's §3.2 data-journalist story and Figure 7:
// McCain's daily donation totals show a strange negative spike around
// day 500. Debugging it surfaces a predicate referencing the memo field
// "REATTRIBUTION TO SPOUSE"; clicking it removes the negative mass.
//
//	go run ./examples/fec_spouse
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/viz"
)

func main() {
	db, _ := datasets.FECDB(datasets.FECConfig{Rows: 120_000, Seed: 5})
	sql := datasets.FECDailySQL("McCain")
	fmt.Println("query:", sql)

	res, err := core.Run(db, sql)
	if err != nil {
		log.Fatal(err)
	}
	plotDaily(res, "Figure 7: McCain total received donations per day")

	// The journalist highlights the negative days.
	suspect, err := core.SuspectWhere(res, "total", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() < 0
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("S: %d days with negative totals\n", len(suspect))

	// She zooms in, sees negative donations, highlights them...
	dprime, err := core.ExamplesWhere(res, suspect, "amount < 0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("D': %d negative donations in those days\n", len(dprime))

	// ...picks "values are too low" and clicks debug!
	dr, err := core.Debug(core.DebugRequest{
		Result:   res,
		AggItem:  -1,
		Suspect:  suspect,
		Examples: dprime,
		Metric:   errmetric.TooLow{C: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nranked predicates:")
	for i, e := range dr.Explanations {
		fmt.Printf("  %d. %s\n", i+1, e.Scored)
	}

	// The REATTRIBUTION TO SPOUSE predicate appears; she clicks it.
	pick := 0
	for i, e := range dr.Explanations {
		if strings.Contains(e.Pred.String(), datasets.MemoReattribution) {
			pick = i
			break
		}
	}
	pred := dr.Explanations[pick].Pred
	fmt.Printf("\nclicking predicate #%d: %s\n", pick+1, pred)
	cleaned, err := core.CleanAndRequery(res, pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("updated query:", core.CleanedSQL(res.Stmt, pred))
	plotDaily(cleaned, "after cleaning: the negative spike is gone")
}

func plotDaily(res *exec.Result, title string) {
	p := viz.Plot{Title: title, XLabel: "campaign day", YLabel: "sum(amount)", Width: 96, Height: 18}
	for r := 0; r < res.Table.NumRows(); r++ {
		tot := res.Table.Value(r, 1)
		if tot.IsNull() {
			continue
		}
		cls := 0
		if tot.Float() < 0 {
			cls = 1
		}
		p.Points = append(p.Points, viz.Point{X: res.Table.Value(r, 0).Float(), Y: tot.Float(), Class: cls})
	}
	fmt.Println(p.ASCII())
}
