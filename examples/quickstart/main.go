// Quickstart: load a tiny table, run an aggregate query, notice a bad
// group, and ask DBWipes why — in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/errmetric"
)

func main() {
	// A toy sensor table: three sensors, one of which (id 3) reads hot.
	schema := engine.NewSchema(
		"sensor", engine.TInt,
		"room", engine.TString,
		"temp", engine.TFloat,
	)
	readings := engine.MustNewTable("readings", schema)
	for i := 0; i < 200; i++ {
		sensor := int64(1 + i%3)
		room := []string{"kitchen", "lab", "lounge"}[i%3]
		temp := 68.0 + float64(i%7)
		if sensor == 3 {
			temp = 120 + float64(i%5) // the broken sensor
		}
		readings.MustAppendRow(
			engine.NewInt(sensor),
			engine.NewString(room),
			engine.NewFloat(temp),
		)
	}
	db := engine.NewDB()
	db.Register(readings)

	// 1. Run an aggregate query (provenance is captured automatically).
	res, err := core.Run(db, "SELECT room, avg(temp) AS avg_temp FROM readings GROUP BY room")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("room        avg_temp")
	for i := 0; i < res.Table.NumRows(); i++ {
		fmt.Printf("%-10s  %.1f\n", res.Table.Value(i, 0).Str(), res.Table.Value(i, 1).Float())
	}

	// 2. Select the suspicious groups S: averages that look too hot.
	suspect, err := core.SuspectWhere(res, "avg_temp", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() > 75
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsuspicious groups: %d\n", len(suspect))

	// 3. Debug: "these averages are too high; expected ~70".
	dr, err := core.Debug(core.DebugRequest{
		Result:  res,
		AggItem: -1,
		Suspect: suspect,
		Metric:  errmetric.TooHigh{C: 70},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ε = %.1f; ranked explanations:\n", dr.Eps)
	for i, e := range dr.Explanations {
		fmt.Printf("  %d. %s (removes %.0f%% of the error, %d tuples)\n",
			i+1, e.Pred, 100*e.ErrImprovement, e.NumTuples)
	}

	// 4. Clean with the top predicate and re-run — "clean as you query".
	cleaned, err := core.CleanAndRequery(res, dr.Explanations[0].Pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter cleaning:")
	fmt.Println(core.CleanedSQL(res.Stmt, dr.Explanations[0].Pred))
	for i := 0; i < cleaned.Table.NumRows(); i++ {
		fmt.Printf("%-10s  %.1f\n", cleaned.Table.Value(i, 0).Str(), cleaned.Table.Value(i, 1).Float())
	}
}
