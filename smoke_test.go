package repro_test

// Perf smoke tests: cheap pins on the scoring hot path that run inside
// plain `go test ./...` (tier-1), so a regression that reintroduces
// per-tuple boxing or per-predicate map churn fails CI instead of only
// showing up in -bench output. The full numbers live in bench_test.go
// and `make bench`.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/influence"
)

// TestInfluenceAllocSmoke pins the leave-one-out pass to a small,
// |F|-independent allocation budget. Before the columnar fast path this
// pass allocated ~6 per lineage tuple (boxed argument evaluation plus
// metric scratch) — about 120k allocations at this scale.
func TestInfluenceAllocSmoke(t *testing.T) {
	e := intelBench(t, 20_000)
	warm, err := influence.Rank(e.res, e.suspect, 0, errmetric.TooHigh{C: 70}, influence.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.F) == 0 {
		t.Fatal("empty lineage")
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := influence.Rank(e.res, e.suspect, 0, errmetric.TooHigh{C: 70}, influence.Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1000 {
		t.Errorf("influence.Rank allocates %.0f per run; the columnar path budget is 1000", allocs)
	}
}

// TestWindowQueryAllocSmoke pins the steady-state vectorized scan of
// the Figure 4 window query to a small allocation budget, mirroring the
// scorer guards above. Before the vectorized executor this query
// allocated ~5 per scanned row (boxed function-call arguments plus the
// string group key) — about 100k allocations at this scale; the
// vectorized scan's allocations are per *group*, not per row.
func TestWindowQueryAllocSmoke(t *testing.T) {
	e := intelBench(t, 20_000)
	// Warm the table's column views, then measure the steady state.
	res, err := exec.RunSQL(e.db, datasets.IntelWindowSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.Vectorized {
		t.Fatalf("window query did not take the vectorized pipeline: %+v", res.Plan)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := exec.RunSQL(e.db, datasets.IntelWindowSQL); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2500 {
		t.Errorf("window query allocates %.0f per run; the vectorized scan budget is 2500", allocs)
	}
}

// TestDebugSmoke runs the full pipeline end to end at reduced scale and
// checks it still produces explanations — the bench-shaped guard that
// keeps BenchmarkFigure6RankedPredicates meaningful in short mode.
func TestDebugSmoke(t *testing.T) {
	e := intelBench(t, 20_000)
	dr, err := core.Debug(core.DebugRequest{
		Result: e.res, AggItem: -1, Suspect: e.suspect,
		Examples: e.dprime, Metric: errmetric.TooHigh{C: 70},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Explanations) == 0 {
		t.Fatal("Debug produced no explanations")
	}
}
