// Command dbwipes serves the DBWipes dashboard over the demo datasets
// (synthetic Intel Lab sensor readings and FEC campaign donations), or
// over any CSV the user supplies.
//
// Usage:
//
//	dbwipes [-addr :8080] [-intel-rows 100000] [-fec-rows 150000]
//	        [-csv table=path.csv ...] [-seed 1]
//	        [-data dir] [-sync-every 64]
//
// With -data, tables live in a durable segment store under the given
// directory: demo and CSV tables are ingested through the WAL on first
// start, recovered from disk (checksummed, with quarantine on
// corruption) on every restart, and /api/append writes are
// acknowledged only after they are logged. Without -data everything
// stays in RAM as before.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/store"
)

type csvFlags []string

func (c *csvFlags) String() string { return strings.Join(*c, ",") }
func (c *csvFlags) Set(s string) error {
	*c = append(*c, s)
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	intelRows := flag.Int("intel-rows", 100_000, "synthetic Intel sensor rows (0 to skip)")
	fecRows := flag.Int("fec-rows", 150_000, "synthetic FEC donation rows (0 to skip)")
	seed := flag.Int64("seed", 1, "generator seed")
	dataDir := flag.String("data", "", "durable data directory (empty = in-memory only)")
	syncEvery := flag.Int("sync-every", 1, "with -data: fsync the WAL every N append batches")
	cacheBytes := flag.Int64("cache-bytes", 0, "with -data: serve sealed segments out-of-core through a buffer pool of about this many bytes (0 = fully resident)")
	queryTimeout := flag.Duration("query-timeout", 0, "default deadline for query-class requests (0 = built-in default, negative = none)")
	debugTimeout := flag.Duration("debug-timeout", 0, "default deadline for /api/debug (0 = built-in default, negative = none)")
	maxHeavy := flag.Int("max-heavy", 0, "concurrent heavy operations (query/debug); 0 = built-in default")
	maxQueue := flag.Int("max-queue", 0, "heavy requests queued beyond -max-heavy before shedding with 429; 0 = built-in default, negative = no queue")
	var csvs csvFlags
	flag.Var(&csvs, "csv", "extra table as name=path.csv (repeatable)")
	flag.Parse()

	var st *store.DB
	var db *engine.DB
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir, store.Options{SyncEvery: *syncEvery, MaxResidentBytes: *cacheBytes})
		if err != nil {
			log.Fatalf("open store %s: %v", *dataDir, err)
		}
		db = st.Eng()
		for name, ts := range st.Stats().Tables {
			log.Printf("recovered %s: %d sealed segments on disk (quarantined: %d, gap: %d segments)",
				name, ts.SealedOnDisk, len(ts.Quarantined), ts.GapSegments)
		}
	} else {
		db = engine.NewDB()
	}

	load := func(t *engine.Table) {
		if ingestDurable(st, db, t) {
			log.Printf("loaded %s (durable)", t)
		} else {
			log.Printf("loaded %s", t)
		}
	}
	have := func(name string) bool {
		_, err := db.Table(name)
		return err == nil
	}
	if *intelRows > 0 {
		if t, _ := datasets.Intel(datasets.IntelConfig{Rows: *intelRows, Seed: *seed}); !have(t.Name()) {
			load(t)
		}
	}
	if *fecRows > 0 {
		if t, _ := datasets.FEC(datasets.FECConfig{Rows: *fecRows, Seed: *seed}); !have(t.Name()) {
			load(t)
		}
	}
	for _, spec := range csvs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("bad -csv %q, want name=path.csv", spec)
		}
		if have(name) {
			log.Printf("table %s already recovered from %s, skipping %s", name, *dataDir, path)
			continue
		}
		t, err := engine.LoadCSVFile(path, name)
		if err != nil {
			log.Fatalf("load %s: %v", path, err)
		}
		load(t)
	}
	if len(db.Names()) == 0 {
		log.Fatal("no tables loaded")
	}

	srv := server.New(db)
	if st != nil {
		srv.AttachStore(st)
	}
	srv.SetLimits(server.Limits{
		QueryTimeout: *queryTimeout,
		DebugTimeout: *debugTimeout,
		MaxHeavy:     *maxHeavy,
		MaxQueue:     *maxQueue,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("DBWipes listening on %s (tables: %s)\n", *addr, strings.Join(db.Names(), ", "))

	select {
	case err := <-errc:
		srv.Close()
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("shutting down: draining in-flight requests")
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	// Only after the drain: flush and close the store, surfacing fsync
	// failures as a nonzero exit instead of swallowing them.
	if err := srv.Close(); err != nil {
		log.Fatalf("close store: %v", err)
	}
	log.Printf("bye")
}

// ingestDurable pushes an in-memory table through the store's WAL so
// it survives restarts; with no store it just registers it. Reports
// whether the table is durable.
func ingestDurable(st *store.DB, db *engine.DB, t *engine.Table) bool {
	if st == nil {
		db.Register(t)
		return false
	}
	if err := st.CreateTable(t.Name(), t.Schema(), engine.DefaultSegmentBits); err != nil {
		log.Fatalf("create %s: %v", t.Name(), err)
	}
	const chunk = 8192 // one WAL record (and fsync) per chunk, not per row
	for lo := 0; lo < t.NumRows(); lo += chunk {
		hi := lo + chunk
		if hi > t.NumRows() {
			hi = t.NumRows()
		}
		rows := make([][]engine.Value, 0, hi-lo)
		for r := lo; r < hi; r++ {
			rows = append(rows, t.Row(r))
		}
		if _, err := st.Append(t.Name(), rows); err != nil {
			log.Fatalf("ingest %s: %v", t.Name(), err)
		}
	}
	return true
}
