// Command dbwipes serves the DBWipes dashboard over the demo datasets
// (synthetic Intel Lab sensor readings and FEC campaign donations), or
// over any CSV the user supplies.
//
// Usage:
//
//	dbwipes [-addr :8080] [-intel-rows 100000] [-fec-rows 150000]
//	        [-csv table=path.csv ...] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/server"
)

type csvFlags []string

func (c *csvFlags) String() string { return strings.Join(*c, ",") }
func (c *csvFlags) Set(s string) error {
	*c = append(*c, s)
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	intelRows := flag.Int("intel-rows", 100_000, "synthetic Intel sensor rows (0 to skip)")
	fecRows := flag.Int("fec-rows", 150_000, "synthetic FEC donation rows (0 to skip)")
	seed := flag.Int64("seed", 1, "generator seed")
	var csvs csvFlags
	flag.Var(&csvs, "csv", "extra table as name=path.csv (repeatable)")
	flag.Parse()

	db := engine.NewDB()
	if *intelRows > 0 {
		t, _ := datasets.Intel(datasets.IntelConfig{Rows: *intelRows, Seed: *seed})
		db.Register(t)
		log.Printf("loaded %s", t)
	}
	if *fecRows > 0 {
		t, _ := datasets.FEC(datasets.FECConfig{Rows: *fecRows, Seed: *seed})
		db.Register(t)
		log.Printf("loaded %s", t)
	}
	for _, spec := range csvs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("bad -csv %q, want name=path.csv", spec)
		}
		t, err := engine.LoadCSVFile(path, name)
		if err != nil {
			log.Fatalf("load %s: %v", path, err)
		}
		db.Register(t)
		log.Printf("loaded %s", t)
	}
	if len(db.Names()) == 0 {
		log.Fatal("no tables loaded")
	}

	srv := server.New(db)
	fmt.Printf("DBWipes listening on %s (tables: %s)\n", *addr, strings.Join(db.Names(), ", "))
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
