// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON document on stdout, so benchmark runs can be checked in
// and diffed across PRs (the perf trajectory files BENCH_PR*.json at
// the repo root). Lines that are not benchmark results pass through to
// stderr untouched, keeping failures visible.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem . | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one benchmark result line.
type Bench struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iters is the measured iteration count.
	Iters int64 `json:"iters"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is allocated bytes per operation (-benchmem).
	BytesPerOp int64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp is allocations per operation (-benchmem).
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom testing.B.ReportMetric values by unit (e.g.
	// retained_MB for the retention benchmarks).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	var doc Doc
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			} else {
				fmt.Fprintln(os.Stderr, line)
			}
		default:
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one result line, e.g.
//
//	BenchmarkFoo/rows=100-8   5   16689573 ns/op   2836403 B/op   1049 allocs/op
func parseBench(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Bench{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix (absent when GOMAXPROCS=1).
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iters: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[fields[i+1]] = v
		}
	}
	return b, true
}
