package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// testTable builds a tiny JSON-safe table (no NaN — json.Marshal
// rejects it) for postBatch payloads.
func testTable(n int) *engine.Table {
	t, err := engine.NewTable("p", engine.Schema{
		{Name: "i", Type: engine.TInt},
		{Name: "f", Type: engine.TFloat},
	})
	if err != nil {
		panic(err)
	}
	for r := 0; r < n; r++ {
		if _, err := t.AppendRow([]engine.Value{
			engine.NewInt(int64(r % 7)), engine.NewFloat(float64(r) * 0.25),
		}); err != nil {
			panic(err)
		}
	}
	return t
}

// newPoster returns a poster with sleeps recorded instead of taken.
func newPoster(budget int) (*poster, *[]time.Duration) {
	var slept []time.Duration
	p := &poster{
		budget: budget,
		sleep:  func(d time.Duration) { slept = append(slept, d) },
		logf:   func(string, ...any) {},
		rng:    rand.New(rand.NewSource(1)),
	}
	return p, &slept
}

// TestPosterRetriesShed pins the backoff contract: a server that sheds
// with 429+Retry-After a few times then accepts must see the batch
// exactly once per attempt, every retry delay must respect the
// Retry-After floor, and the call must succeed within budget.
func TestPosterRetriesShed(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 3 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	p, slept := newPoster(8)
	tbl := testTable(10)
	if err := p.postBatch(ts.URL, "t", tbl, 0, 10); err != nil {
		t.Fatalf("postBatch: %v", err)
	}
	if got := hits.Load(); got != 4 {
		t.Fatalf("server saw %d attempts, want 4", got)
	}
	if len(*slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(*slept))
	}
	for i, d := range *slept {
		if d < time.Second {
			t.Errorf("retry %d slept %v, under the 1s Retry-After floor", i, d)
		}
	}
}

// TestPosterBackoffGrows pins the exponential-with-jitter shape when no
// Retry-After floor applies: each delay stays within [base<<n / 2,
// 3*(base<<n)/2) and the cap holds.
func TestPosterBackoffGrows(t *testing.T) {
	p, _ := newPoster(0)
	for attempt := 0; attempt < 12; attempt++ {
		base := backoffBase << attempt
		if base > backoffCap || base <= 0 {
			base = backoffCap
		}
		for trial := 0; trial < 32; trial++ {
			d := p.delay(attempt, 0)
			if d < base/2 || d >= base/2+base {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, base/2, base/2+base)
			}
		}
	}
}

// TestPosterBudgetExhausted pins that a persistently shedding server
// exhausts the retry budget with an error (not a hang or silent drop):
// budget N means N+1 total attempts.
func TestPosterBudgetExhausted(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"table failed","reason":"fail-stopped","retryable":true}`,
			http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	p, slept := newPoster(3)
	tbl := testTable(5)
	err := p.postBatch(ts.URL, "t", tbl, 0, 5)
	if err == nil || !strings.Contains(err.Error(), "retry budget (3) exhausted") {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if got := hits.Load(); got != 4 {
		t.Fatalf("server saw %d attempts, want 4 (1 + budget 3)", got)
	}
	if len(*slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(*slept))
	}
}

// TestPosterNoRetryOnClientError pins that non-retryable statuses fail
// immediately: a schema error will not resolve itself, so burning the
// budget on it would only hide the bug.
func TestPosterNoRetryOnClientError(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"row 0: want 5 cells"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	p, slept := newPoster(8)
	tbl := testTable(5)
	err := p.postBatch(ts.URL, "t", tbl, 0, 5)
	if err == nil || !strings.Contains(err.Error(), "status 400") {
		t.Fatalf("err = %v, want immediate status 400 failure", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want exactly 1", got)
	}
	if len(*slept) != 0 {
		t.Fatalf("slept %d times on a non-retryable error", len(*slept))
	}
}

// TestPosterRetriesTransportError pins that a dead server (connection
// refused) is retried like a shed — and that a server coming back up
// mid-budget rescues the batch.
func TestPosterRetriesTransportError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	url := ts.URL
	ts.Close() // now refuses connections

	p, slept := newPoster(2)
	tbl := testTable(5)
	err := p.postBatch(url, "t", tbl, 0, 5)
	if err == nil || !strings.Contains(err.Error(), "retry budget (2) exhausted") {
		t.Fatalf("err = %v, want budget exhaustion on transport errors", err)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
}
