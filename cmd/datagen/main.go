// Command datagen writes the synthetic demo datasets to CSV, together
// with their ground-truth anomaly labels (one label file row per data
// row: "rowid,anomalous").
//
// Usage:
//
//	datagen -dataset intel -rows 100000 -out readings.csv [-truth truth.csv] [-seed 1]
//	datagen -dataset fec   -rows 150000 -out donations.csv
//
// Streaming driver — the continuous-monitoring scenario. The base rows
// go to -out as usual and the remaining rows are carved into -batches
// append batches of -batch-rows each, either written as numbered CSV
// files next to -out or POSTed to a running dashboard's /api/append
// ingest endpoint (with -interval pacing, simulating live sensors):
//
//	datagen -dataset intel -rows 100000 -batches 20 -batch-rows 1000 -out readings.csv
//	datagen -dataset intel -rows 100000 -batches 20 -batch-rows 1000 -out readings.csv \
//	        -post http://localhost:8080/api/append -table readings -interval 500ms
//
// With -data the rows are instead ingested into a durable segment
// store directory (WAL + sealed segment files) ready for
// `dbwipes -data`:
//
//	datagen -dataset intel -rows 100000 -batches 20 -data ./data -table readings
package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/store"
)

func main() {
	dataset := flag.String("dataset", "intel", "intel or fec")
	rows := flag.Int("rows", 100_000, "base row count")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output CSV path (required)")
	truthPath := flag.String("truth", "", "optional ground-truth CSV path")
	batches := flag.Int("batches", 0, "streaming: number of append batches to generate after the base rows")
	batchRows := flag.Int("batch-rows", 1000, "streaming: rows per append batch")
	post := flag.String("post", "", "streaming: POST batches to this /api/append URL instead of writing CSVs")
	table := flag.String("table", "readings", "streaming: table name for -post/-data")
	interval := flag.Duration("interval", 0, "streaming: pause between posted batches")
	retries := flag.Int("retries", 8, "streaming: retry budget per posted batch when the server sheds (429/503)")
	dataPath := flag.String("data", "", "ingest into a durable store directory instead of writing CSVs")
	fixtureBytes := flag.Int64("fixture-bytes", 0, "with -data: ignore -rows and keep appending synthetic rows until the store directory holds at least this many on-disk bytes — bigger-than-cache fixtures for `dbwipes -cache-bytes` out-of-core serving")
	flag.Parse()
	if *out == "" && *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *fixtureBytes > 0 {
		if *dataPath == "" {
			log.Fatal("-fixture-bytes requires -data")
		}
		fixtureStore(*dataPath, *table, *dataset, *seed, *fixtureBytes)
		return
	}

	total := *rows
	if *batches > 0 {
		total += *batches * *batchRows
	}
	var t *engine.Table
	var truth []bool
	switch *dataset {
	case "intel":
		t, truth = datasets.Intel(datasets.IntelConfig{Rows: total, Seed: *seed})
	case "fec":
		t, truth = datasets.FEC(datasets.FECConfig{Rows: total, Seed: *seed})
	default:
		log.Fatalf("unknown dataset %q (want intel or fec)", *dataset)
	}

	if *dataPath != "" {
		ingestStore(*dataPath, *table, t, *rows, *batches, *batchRows)
		if *out == "" {
			return
		}
	}

	base := t
	if *batches > 0 {
		ids := make([]int, *rows)
		for i := range ids {
			ids[i] = i
		}
		base = t.Select(ids)
	}
	if err := engine.SaveCSVFile(*out, base); err != nil {
		log.Fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s (%d rows)\n", *out, base.NumRows())

	p := &poster{budget: *retries, sleep: time.Sleep, logf: log.Printf,
		rng: rand.New(rand.NewSource(*seed))}
	for b := 0; b < *batches; b++ {
		lo := *rows + b**batchRows
		hi := lo + *batchRows
		if *post != "" {
			if err := p.postBatch(*post, *table, t, lo, hi); err != nil {
				log.Fatalf("post batch %d: %v", b, err)
			}
			fmt.Printf("posted batch %d (%d rows) to %s\n", b, hi-lo, *post)
			if *interval > 0 && b < *batches-1 {
				time.Sleep(*interval)
			}
			continue
		}
		ids := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			ids = append(ids, i)
		}
		path := fmt.Sprintf("%s.batch%03d.csv", *out, b)
		if err := engine.SaveCSVFile(path, t.Select(ids)); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, hi-lo)
	}

	if *truthPath != "" {
		f, err := os.Create(*truthPath)
		if err != nil {
			log.Fatalf("create %s: %v", *truthPath, err)
		}
		w := csv.NewWriter(f)
		_ = w.Write([]string{"rowid", "anomalous"})
		n := 0
		for i, l := range truth {
			_ = w.Write([]string{strconv.Itoa(i), strconv.FormatBool(l)})
			if l {
				n++
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			log.Fatalf("write %s: %v", *truthPath, err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d anomalous rows)\n", *truthPath, n)
	}
}

// ingestStore writes the base rows and every append batch of t into a
// durable segment store at dir: the WAL-then-ack path dbwipes itself
// uses, so the directory can be handed straight to `dbwipes -data`.
func ingestStore(dir, table string, t *engine.Table, baseRows, batches, batchRows int) {
	st, err := store.Open(dir, store.Options{SyncEvery: 64})
	if err != nil {
		log.Fatalf("open store %s: %v", dir, err)
	}
	if err := st.CreateTable(table, t.Schema(), engine.DefaultSegmentBits); err != nil {
		log.Fatalf("create %s: %v", table, err)
	}
	appendRange := func(lo, hi int) {
		const chunk = 8192
		for ; lo < hi; lo += chunk {
			end := lo + chunk
			if end > hi {
				end = hi
			}
			rows := make([][]engine.Value, 0, end-lo)
			for r := lo; r < end; r++ {
				rows = append(rows, t.Row(r))
			}
			if _, err := st.Append(table, rows); err != nil {
				log.Fatalf("ingest %s rows [%d,%d): %v", table, lo, end, err)
			}
		}
	}
	appendRange(0, baseRows)
	fmt.Printf("ingested %s base (%d rows) into %s\n", table, baseRows, dir)
	for b := 0; b < batches; b++ {
		lo := baseRows + b*batchRows
		appendRange(lo, lo+batchRows)
		fmt.Printf("ingested batch %d (%d rows)\n", b, batchRows)
	}
	// Close flushes any batched WAL syncs; an error here means the tail
	// may not be on the platter, so it must not exit 0.
	if err := st.Close(); err != nil {
		log.Fatalf("close store: %v", err)
	}
}

// fixtureStore grows a durable table until the store directory's
// on-disk footprint reaches target bytes, generating dataset rows in
// rounds (a fresh seed per round, so values stay varied). The row
// count is adaptive — encoded bytes per row depend on the dataset — so
// the caller asks for a size, not a count. Meant for out-of-core
// testing: build a fixture ~10x the pool you plan to serve it with.
func fixtureStore(dir, table, dataset string, seed, target int64) {
	st, err := store.Open(dir, store.Options{SyncEvery: 64})
	if err != nil {
		log.Fatalf("open store %s: %v", dir, err)
	}
	const roundRows = 32768
	created := false
	for round := 0; ; round++ {
		size, err := dirBytes(dir)
		if err != nil {
			log.Fatalf("size %s: %v", dir, err)
		}
		if size >= target {
			if err := st.Close(); err != nil {
				log.Fatalf("close store: %v", err)
			}
			fmt.Printf("fixture %s: %d bytes on disk (target %d); serve with dbwipes -data %s -cache-bytes %d for ~10x-cache out-of-core load\n",
				dir, size, target, dir, target/10)
			return
		}
		var t *engine.Table
		switch dataset {
		case "intel":
			t, _ = datasets.Intel(datasets.IntelConfig{Rows: roundRows, Seed: seed + int64(round)})
		case "fec":
			t, _ = datasets.FEC(datasets.FECConfig{Rows: roundRows, Seed: seed + int64(round)})
		default:
			log.Fatalf("unknown dataset %q (want intel or fec)", dataset)
		}
		if !created {
			if err := st.CreateTable(table, t.Schema(), engine.DefaultSegmentBits); err != nil {
				log.Fatalf("create %s: %v", table, err)
			}
			created = true
		}
		const chunk = 8192
		for lo := 0; lo < t.NumRows(); lo += chunk {
			end := lo + chunk
			if end > t.NumRows() {
				end = t.NumRows()
			}
			rows := make([][]engine.Value, 0, end-lo)
			for r := lo; r < end; r++ {
				rows = append(rows, t.Row(r))
			}
			if _, err := st.Append(table, rows); err != nil {
				log.Fatalf("ingest %s rows [%d,%d): %v", table, lo, end, err)
			}
		}
		fmt.Printf("fixture round %d: %d rows appended (%d bytes on disk so far)\n", round, t.NumRows(), size)
	}
}

// dirBytes sums the sizes of all regular files under dir.
func dirBytes(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			info, err := d.Info()
			if err != nil {
				return err
			}
			total += info.Size()
		}
		return nil
	})
	return total, err
}

// poster ships append batches to a dashboard with jittered exponential
// backoff: a live server under load sheds ingest with 429 (admission
// queue full) or 503 (store fail-stopped), both carrying a Retry-After
// hint. Those are invitations to come back, not failures — the poster
// honors the hint (using it as the floor for the next delay), doubles a
// jittered base delay on every consecutive shed, and only gives up once
// the retry budget for a batch is spent. Non-retryable statuses (4xx
// schema errors and the like) fail immediately.
type poster struct {
	budget int                 // retries per batch after the first attempt
	sleep  func(time.Duration) // injectable for tests
	logf   func(string, ...any)
	rng    *rand.Rand
}

// backoffBase is the first retry delay; it doubles per consecutive
// shed up to backoffCap, with ±50% jitter so restarted feeders don't
// re-synchronize into thundering herds.
const (
	backoffBase = 100 * time.Millisecond
	backoffCap  = 10 * time.Second
)

// delay computes the jittered exponential delay for the given attempt
// (0-based), floored by the server's Retry-After hint when present.
func (p *poster) delay(attempt int, retryAfter time.Duration) time.Duration {
	d := backoffBase << attempt
	if d > backoffCap || d <= 0 {
		d = backoffCap
	}
	// Jitter into [d/2, 3d/2): desynchronizes concurrent feeders.
	d = d/2 + time.Duration(p.rng.Int63n(int64(d)))
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// retryable reports whether a shed status is worth retrying: 429 means
// the admission queue was full, 503 means the table is fail-stopped or
// the server is otherwise briefly unavailable. Both send Retry-After.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// postBatch ships rows [lo, hi) of t to a dashboard's /api/append
// endpoint as JSON cells (null / bool / number / string; timestamps as
// RFC 3339 strings, which the server parses per column type), retrying
// shed responses under the poster's budget.
func (p *poster) postBatch(url, table string, t *engine.Table, lo, hi int) error {
	rows := make([][]any, 0, hi-lo)
	for r := lo; r < hi; r++ {
		row := t.Row(r)
		cells := make([]any, len(row))
		for c, v := range row {
			switch v.T {
			case engine.TNull:
				cells[c] = nil
			case engine.TBool:
				cells[c] = v.Bool()
			case engine.TInt:
				cells[c] = v.I
			case engine.TFloat:
				cells[c] = v.F
			case engine.TTime:
				cells[c] = v.Time().UTC().Format(time.RFC3339)
			default:
				cells[c] = v.S
			}
		}
		rows = append(rows, cells)
	}
	body, err := json.Marshal(map[string]any{"table": table, "rows": rows})
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		status, retryAfter, respBody, err := p.postOnce(url, body)
		if err == nil {
			switch {
			case status == http.StatusOK:
				return nil
			case !retryable(status):
				return fmt.Errorf("status %d: %s", status, respBody)
			}
		}
		if attempt >= p.budget {
			if err != nil {
				return fmt.Errorf("retry budget (%d) exhausted: %w", p.budget, err)
			}
			return fmt.Errorf("retry budget (%d) exhausted: server still shedding with %d: %s",
				p.budget, status, respBody)
		}
		d := p.delay(attempt, retryAfter)
		if err != nil {
			p.logf("post failed (%v); retry %d/%d in %v", err, attempt+1, p.budget, d)
		} else {
			p.logf("server shed with %d (Retry-After %v); retry %d/%d in %v",
				status, retryAfter, attempt+1, p.budget, d)
		}
		p.sleep(d)
	}
}

// postOnce performs a single POST, returning the status, any parsed
// Retry-After hint, and the response body. A transport error
// (connection refused, reset) returns err != nil and is retried like a
// shed — feeders outlive server restarts.
func (p *poster) postOnce(url string, body []byte) (status int, retryAfter time.Duration, respBody string, err error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, "", err
	}
	defer resp.Body.Close()
	if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs >= 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, retryAfter, buf.String(), nil
}
