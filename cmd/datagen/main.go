// Command datagen writes the synthetic demo datasets to CSV, together
// with their ground-truth anomaly labels (one label file row per data
// row: "rowid,anomalous").
//
// Usage:
//
//	datagen -dataset intel -rows 100000 -out readings.csv [-truth truth.csv] [-seed 1]
//	datagen -dataset fec   -rows 150000 -out donations.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/datasets"
	"repro/internal/engine"
)

func main() {
	dataset := flag.String("dataset", "intel", "intel or fec")
	rows := flag.Int("rows", 100_000, "row count")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output CSV path (required)")
	truthPath := flag.String("truth", "", "optional ground-truth CSV path")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var t *engine.Table
	var truth []bool
	switch *dataset {
	case "intel":
		t, truth = datasets.Intel(datasets.IntelConfig{Rows: *rows, Seed: *seed})
	case "fec":
		t, truth = datasets.FEC(datasets.FECConfig{Rows: *rows, Seed: *seed})
	default:
		log.Fatalf("unknown dataset %q (want intel or fec)", *dataset)
	}

	if err := engine.SaveCSVFile(*out, t); err != nil {
		log.Fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s (%d rows)\n", *out, t.NumRows())

	if *truthPath != "" {
		f, err := os.Create(*truthPath)
		if err != nil {
			log.Fatalf("create %s: %v", *truthPath, err)
		}
		w := csv.NewWriter(f)
		_ = w.Write([]string{"rowid", "anomalous"})
		n := 0
		for i, l := range truth {
			_ = w.Write([]string{strconv.Itoa(i), strconv.FormatBool(l)})
			if l {
				n++
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			log.Fatalf("write %s: %v", *truthPath, err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d anomalous rows)\n", *truthPath, n)
	}
}
