// Command experiments regenerates every figure of the paper and the
// quantitative evaluation recorded in EXPERIMENTS.md.
//
// Experiment ids (see DESIGN.md §3):
//
//	F4  — Figure 4: avg/stddev temperature per 30-min window (Intel)
//	F4z — Figure 4 (right): zoom into suspect windows' raw tuples
//	F6  — Figure 6: ranked predicates for the Intel sensor query
//	F7  — Figure 7: McCain's daily donation totals with negative spike
//	W1  — §3.2 walkthrough: debug + clean the reattribution anomaly
//	E1  — explanation quality vs baselines (precision/recall/F1)
//	E2  — Debug latency scaling vs dataset size
//	E3  — splitting-criterion ablation (gini/entropy/gainratio)
//	E4  — subgroup beam width + D' cleaner ablations
//	E5  — leave-one-out influence ranking quality
//	E6  — ranker-term ablation (pruning / merging / excess penalty)
//
// Usage:
//
//	experiments [-exp all|F4,F6,...] [-rows 100000] [-seed 7] [-svg figures/]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dtree"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/feature"
	"repro/internal/influence"
	"repro/internal/ranker"
	"repro/internal/subgroup"
	"repro/internal/viz"
)

type env struct {
	rows   int
	seed   int64
	svgDir string
	w      io.Writer
}

type experiment struct {
	id, title string
	run       func(*env) error
}

var experimentList = []experiment{
	{"F4", "Figure 4 (left): avg & stddev of temperature per 30-min window", runF4},
	{"F4z", "Figure 4 (right): zoom into suspicious windows", runF4z},
	{"F6", "Figure 6: ranked predicates for the Intel sensor query", runF6},
	{"F7", "Figure 7: McCain total donations per day", runF7},
	{"W1", "Walkthrough: debug + clean the FEC reattribution anomaly", runW1},
	{"E1", "Explanation quality: ranked provenance vs baselines", runE1},
	{"E2", "Debug latency scaling", runE2},
	{"E3", "Splitting-criterion ablation", runE3},
	{"E4", "Beam width and D'-cleaning ablations", runE4},
	{"E5", "Leave-one-out influence ranking quality", runE5},
	{"E6", "Ranker-term ablation: pruning / merging / excess penalty", runE6},
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or all")
	rows := flag.Int("rows", 100_000, "base dataset size")
	seed := flag.Int64("seed", 7, "generator seed")
	svgDir := flag.String("svg", "", "write figure SVGs into this directory")
	flag.Parse()

	want := map[string]bool{}
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	e := &env{rows: *rows, seed: *seed, svgDir: *svgDir, w: os.Stdout}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	for _, x := range experimentList {
		if len(want) > 0 && !want[strings.ToUpper(x.id)] {
			continue
		}
		fmt.Fprintf(e.w, "\n================================================================\n")
		fmt.Fprintf(e.w, "%s — %s\n", x.id, x.title)
		fmt.Fprintf(e.w, "================================================================\n")
		start := time.Now()
		if err := x.run(e); err != nil {
			fmt.Fprintf(e.w, "FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(e.w, "[%s completed in %v]\n", x.id, time.Since(start).Round(time.Millisecond))
	}
}

// ---------------------------------------------------------------------
// shared flows

type intelFlow struct {
	db      *engine.DB
	truth   *datasets.Truth
	res     *exec.Result
	suspect []int
	dprime  []int
}

func intelSetup(rows int, seed int64) (*intelFlow, error) {
	db, labels := datasets.IntelDB(datasets.IntelConfig{Rows: rows, Seed: seed})
	res, err := exec.RunSQL(db, datasets.IntelWindowSQL)
	if err != nil {
		return nil, err
	}
	suspect, err := core.SuspectWhere(res, "std_temp", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() > 10
	})
	if err != nil {
		return nil, err
	}
	dprime, err := core.ExamplesWhere(res, suspect, "temperature > 100")
	if err != nil {
		return nil, err
	}
	return &intelFlow{db: db, truth: datasets.NewTruth(labels), res: res, suspect: suspect, dprime: dprime}, nil
}

func (f *intelFlow) debug(opt core.Options) (*core.DebugResult, error) {
	return core.Debug(core.DebugRequest{
		Result: f.res, AggItem: -1, Suspect: f.suspect,
		Examples: f.dprime, Metric: errmetric.TooHigh{C: 70}, Opt: opt,
	})
}

type fecFlow struct {
	db      *engine.DB
	truth   *datasets.Truth
	res     *exec.Result
	suspect []int
	dprime  []int
}

func fecSetup(rows int, seed int64) (*fecFlow, error) {
	db, labels := datasets.FECDB(datasets.FECConfig{Rows: rows, Seed: seed})
	res, err := exec.RunSQL(db, datasets.FECDailySQL("McCain"))
	if err != nil {
		return nil, err
	}
	suspect, err := core.SuspectWhere(res, "total", func(v engine.Value) bool {
		return !v.IsNull() && v.Float() < 0
	})
	if err != nil {
		return nil, err
	}
	dprime, err := core.ExamplesWhere(res, suspect, "amount < 0")
	if err != nil {
		return nil, err
	}
	return &fecFlow{db: db, truth: datasets.NewTruth(labels), res: res, suspect: suspect, dprime: dprime}, nil
}

func (f *fecFlow) debug(opt core.Options) (*core.DebugResult, error) {
	return core.Debug(core.DebugRequest{
		Result: f.res, AggItem: -1, Suspect: f.suspect,
		Examples: f.dprime, Metric: errmetric.TooLow{C: 0}, Opt: opt,
	})
}

func writeSVG(e *env, name string, p *viz.Plot) {
	if e.svgDir == "" {
		return
	}
	path := filepath.Join(e.svgDir, name)
	if err := os.WriteFile(path, []byte(p.SVG()), 0o644); err != nil {
		fmt.Fprintf(e.w, "(svg write failed: %v)\n", err)
		return
	}
	fmt.Fprintf(e.w, "(wrote %s)\n", path)
}

func table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(header)
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range rows {
		line(r)
	}
}

// ---------------------------------------------------------------------
// F4

func runF4(e *env) error {
	f, err := intelSetup(e.rows, e.seed)
	if err != nil {
		return err
	}
	res := f.res
	inS := map[int]bool{}
	for _, s := range f.suspect {
		inS[s] = true
	}
	avgPlot := viz.Plot{Title: "avg(temperature) per 30-min window", XLabel: "w30 (unix sec)", YLabel: "avg temp (F)", Width: 100, Height: 20}
	stdPlot := viz.Plot{Title: "stddev(temperature) per 30-min window (suspects marked #)", XLabel: "w30 (unix sec)", YLabel: "stddev temp", Width: 100, Height: 20}
	var maxStd float64
	for r := 0; r < res.Table.NumRows(); r++ {
		x := res.Table.Value(r, 0).Float()
		avg := res.Table.Value(r, 1)
		std := res.Table.Value(r, 2)
		if !avg.IsNull() {
			avgPlot.Points = append(avgPlot.Points, viz.Point{X: x, Y: avg.Float()})
		}
		if !std.IsNull() {
			cls := 0
			if inS[r] {
				cls = 1
			}
			stdPlot.Points = append(stdPlot.Points, viz.Point{X: x, Y: std.Float(), Class: cls})
			if std.Float() > maxStd {
				maxStd = std.Float()
			}
		}
	}
	fmt.Fprintln(e.w, avgPlot.ASCII())
	fmt.Fprintln(e.w, stdPlot.ASCII())
	fmt.Fprintf(e.w, "windows: %d   suspect (stddev>10): %d   max stddev: %.1f\n",
		res.Table.NumRows(), len(f.suspect), maxStd)
	fmt.Fprintf(e.w, "paper shape: a distinct subset of windows with stddev far above the rest → %v\n",
		len(f.suspect) > 0 && len(f.suspect) < res.Table.NumRows()/2)
	writeSVG(e, "fig4_left_avg.svg", &avgPlot)
	writeSVG(e, "fig4_left_std.svg", &stdPlot)
	return nil
}

func runF4z(e *env) error {
	f, err := intelSetup(e.rows, e.seed)
	if err != nil {
		return err
	}
	lineage := f.res.Lineage(f.suspect)
	src := f.res.Source
	tempCol := src.Schema().ColIndex("temperature")
	zoom := viz.Plot{Title: "raw temperature readings in suspect windows (D' = >100F marked #)", XLabel: "ts", YLabel: "temperature", Width: 100, Height: 20}
	tsCol := src.Schema().ColIndex("ts")
	over100 := 0
	for _, r := range lineage {
		tv := src.Value(r, tempCol)
		if tv.IsNull() {
			continue
		}
		cls := 0
		if tv.Float() > 100 {
			cls = 1
			over100++
		}
		zoom.Points = append(zoom.Points, viz.Point{X: src.Value(r, tsCol).Float(), Y: tv.Float(), Class: cls})
	}
	fmt.Fprintln(e.w, zoom.ASCII())
	p, rr, f1 := f.truth.Score(f.dprime, lineage)
	fmt.Fprintf(e.w, "lineage tuples: %d   readings >100F: %d\n", len(lineage), over100)
	fmt.Fprintf(e.w, "D' (temp>100) vs ground truth within lineage: precision=%.2f recall=%.2f f1=%.2f\n", p, rr, f1)
	writeSVG(e, "fig4_right_zoom.svg", &zoom)
	return nil
}

func runF6(e *env) error {
	f, err := intelSetup(e.rows, e.seed)
	if err != nil {
		return err
	}
	start := time.Now()
	dr, err := f.debug(core.Options{})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	var rows [][]string
	for i, x := range dr.Explanations {
		matched := x.Pred.MatchingRows(f.res.Source, dr.F)
		p, r, f1 := f.truth.Score(matched, dr.F)
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			x.Pred.String(),
			fmt.Sprintf("%.3f", x.Score),
			fmt.Sprintf("%.0f%%", 100*x.ErrImprovement),
			fmt.Sprintf("%d", x.NumTuples),
			fmt.Sprintf("%.2f/%.2f/%.2f", p, r, f1),
			x.Origin,
		})
	}
	table(e.w, []string{"rank", "predicate", "score", "Δε", "tuples", "truth P/R/F1", "origin"}, rows)
	fmt.Fprintf(e.w, "ε=%.1f  lineage=%d  candidates=%d  latency=%v\n", dr.Eps, len(dr.F), dr.Candidates, elapsed.Round(time.Millisecond))
	fmt.Fprintf(e.w, "stage timings: %s\n", timings(dr))
	return nil
}

func runF7(e *env) error {
	f, err := fecSetup(int(float64(e.rows)*1.5), e.seed)
	if err != nil {
		return err
	}
	res := f.res
	inS := map[int]bool{}
	for _, s := range f.suspect {
		inS[s] = true
	}
	p := viz.Plot{Title: "McCain total received donations per day since 11/14/2006 (negative spike marked #)",
		XLabel: "campaign day", YLabel: "sum(amount) $", Width: 100, Height: 22, Lines: false}
	var worstDay int
	var worstVal float64
	for r := 0; r < res.Table.NumRows(); r++ {
		day := res.Table.Value(r, 0).Float()
		tot := res.Table.Value(r, 1)
		if tot.IsNull() {
			continue
		}
		cls := 0
		if inS[r] {
			cls = 1
		}
		if tot.Float() < worstVal {
			worstVal = tot.Float()
			worstDay = int(day)
		}
		p.Points = append(p.Points, viz.Point{X: day, Y: tot.Float(), Class: cls})
	}
	fmt.Fprintln(e.w, p.ASCII())
	fmt.Fprintf(e.w, "days: %d   negative days: %d   worst: day %d ($%.0f)\n",
		res.Table.NumRows(), len(f.suspect), worstDay, worstVal)
	fmt.Fprintf(e.w, "paper shape: strange negative spike around day 500 → %v (worst day within 490..510: %v)\n",
		worstVal < 0, worstDay >= 490 && worstDay <= 510)
	writeSVG(e, "fig7_fec_daily.svg", &p)
	return nil
}

func runW1(e *env) error {
	f, err := fecSetup(int(float64(e.rows)*1.5), e.seed)
	if err != nil {
		return err
	}
	dr, err := f.debug(core.Options{})
	if err != nil {
		return err
	}
	if len(dr.Explanations) == 0 {
		return fmt.Errorf("no explanations")
	}
	fmt.Fprintln(e.w, "top predicates:")
	for i, x := range dr.Explanations[:minInt(5, len(dr.Explanations))] {
		fmt.Fprintf(e.w, "  [%d] %s\n", i, x.Scored)
	}
	top := dr.Explanations[0]
	mentionsMemo := false
	for _, x := range dr.Explanations[:minInt(3, len(dr.Explanations))] {
		if strings.Contains(x.Pred.String(), "memo") {
			mentionsMemo = true
		}
	}
	cleaned, err := core.CleanAndRequery(f.res, top.Pred)
	if err != nil {
		return err
	}
	before := negativeMass(f.res)
	after := negativeMass(cleaned)
	removed := 0.0
	if before > 0 {
		removed = 1 - after/before
	}
	fmt.Fprintf(e.w, "\ncleaned query: %s\n", core.CleanedSQL(f.res.Stmt, top.Pred))
	fmt.Fprintf(e.w, "negative mass: before=$%.0f after=$%.0f (removed %.0f%%)\n", before, after, 100*removed)
	fmt.Fprintf(e.w, "paper shape: top predicates reference memo REATTRIBUTION TO SPOUSE → %v;\n", mentionsMemo)
	fmt.Fprintf(e.w, "  clicking removes a significant fraction of the negative value → %v\n", removed > 0.7)
	return nil
}

func negativeMass(res *exec.Result) float64 {
	ci := res.Table.Schema().ColIndex("total")
	var mass float64
	for r := 0; r < res.Table.NumRows(); r++ {
		v := res.Table.Value(r, ci)
		if !v.IsNull() && v.Float() < 0 {
			mass += -v.Float()
		}
	}
	return mass
}

// ---------------------------------------------------------------------
// E1 — quality vs baselines

func runE1(e *env) error {
	type flow struct {
		name    string
		res     *exec.Result
		suspect []int
		dprime  []int
		truth   *datasets.Truth
		metric  errmetric.Metric
		aggCol  string // excluded from predicate vocabularies, like the pipeline does
	}
	fi, err := intelSetup(e.rows, e.seed)
	if err != nil {
		return err
	}
	ff, err := fecSetup(e.rows, e.seed)
	if err != nil {
		return err
	}
	flows := []flow{
		{"intel", fi.res, fi.suspect, fi.dprime, fi.truth, errmetric.TooHigh{C: 70}, "temperature"},
		{"fec", ff.res, ff.suspect, ff.dprime, ff.truth, errmetric.TooLow{C: 0}, "amount"},
	}
	var rows [][]string
	for _, fl := range flows {
		F := fl.res.Lineage(fl.suspect)
		truthInF := 0
		for _, r := range F {
			if fl.truth.Label(r) {
				truthInF++
			}
		}

		// Ranked provenance (ours): top-1 predicate's tuple set.
		start := time.Now()
		dr, err := core.Debug(core.DebugRequest{
			Result: fl.res, AggItem: -1, Suspect: fl.suspect,
			Examples: fl.dprime, Metric: fl.metric,
		})
		if err != nil {
			return err
		}
		ourTime := time.Since(start)
		var ourSet []int
		ourDesc := "(none)"
		if len(dr.Explanations) > 0 {
			ourSet = dr.Explanations[0].Pred.MatchingRows(fl.res.Source, F)
			ourDesc = dr.Explanations[0].Pred.String()
		}
		addRow := func(method string, set []int, desc string, dur time.Duration) {
			p, r, f1 := fl.truth.Score(set, F)
			rows = append(rows, []string{fl.name, method,
				fmt.Sprintf("%d", len(set)),
				fmt.Sprintf("%.3f", p), fmt.Sprintf("%.3f", r), fmt.Sprintf("%.3f", f1),
				dur.Round(time.Millisecond).String(), desc})
		}
		addRow("ranked-provenance(top1)", ourSet, ourDesc, ourTime)

		// Full provenance baseline.
		start = time.Now()
		full := baseline.FullProvenance(fl.res, fl.suspect)
		addRow("full-provenance", full, "(all lineage tuples)", time.Since(start))

		// Top-k influence baseline (k = |ground truth in F| for the
		// fairest possible comparison).
		start = time.Now()
		topk, err := baseline.TopKInfluence(fl.res, fl.suspect, 0, fl.metric, truthInF)
		if err != nil {
			return err
		}
		addRow(fmt.Sprintf("topk-influence(k=%d)", truthInF), topk, "(tuple ids, no description)", time.Since(start))

		// Exhaustive predicate search baseline.
		start = time.Now()
		exh, err := baseline.Exhaustive(fl.res, fl.suspect, 0, fl.metric, baseline.ExhaustiveOptions{
			Feature: feature.Options{Exclude: []string{fl.aggCol}},
		})
		if err != nil {
			return err
		}
		if len(exh) > 0 {
			set := exh[0].Pred.MatchingRows(fl.res.Source, F)
			addRow(fmt.Sprintf("exhaustive-2clause(%d evaluated)", exh[0].Evaluated), set, exh[0].Pred.String(), time.Since(start))
		}
	}
	table(e.w, []string{"dataset", "method", "|out|", "precision", "recall", "F1", "time", "description"}, rows)
	fmt.Fprintln(e.w, "paper shape: ranked provenance precision ≫ full-provenance precision; only predicate methods produce descriptions")
	return nil
}

// ---------------------------------------------------------------------
// E2 — latency scaling

func runE2(e *env) error {
	sizes := []int{25_000, 50_000, 100_000, 200_000, 400_000}
	var rows [][]string
	for _, n := range sizes {
		f, err := intelSetup(n, e.seed)
		if err != nil {
			return err
		}
		qStart := time.Now()
		res, err := exec.RunSQL(f.db, datasets.IntelWindowSQL)
		if err != nil {
			return err
		}
		qTime := time.Since(qStart)
		_ = res
		dStart := time.Now()
		dr, err := f.debug(core.Options{})
		if err != nil {
			return err
		}
		dTime := time.Since(dStart)
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", len(dr.F)),
			qTime.Round(time.Millisecond).String(),
			dTime.Round(time.Millisecond).String(),
			timings(dr),
		})
	}
	table(e.w, []string{"|D| rows", "|F| lineage", "query", "debug", "stage breakdown"}, rows)
	fmt.Fprintln(e.w, "paper shape: debug latency grows ~linearly in |F| (LOO influence is O(|F|) via removable aggregates)")
	return nil
}

// ---------------------------------------------------------------------
// E3 — splitting criteria ablation

func runE3(e *env) error {
	f, err := intelSetup(e.rows, e.seed)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, crit := range []dtree.Criterion{dtree.Gini, dtree.Entropy, dtree.GainRatio} {
		start := time.Now()
		dr, err := f.debug(core.Options{Criteria: []dtree.Criterion{crit}})
		if err != nil {
			return err
		}
		dur := time.Since(start)
		desc, f1s, length := "(none)", "0/0/0", 0
		if len(dr.Explanations) > 0 {
			top := dr.Explanations[0]
			matched := top.Pred.MatchingRows(f.res.Source, dr.F)
			p, r, f1 := f.truth.Score(matched, dr.F)
			f1s = fmt.Sprintf("%.2f/%.2f/%.2f", p, r, f1)
			desc = top.Pred.String()
			length = top.Complexity
		}
		rows = append(rows, []string{crit.String(), f1s, fmt.Sprintf("%d", length),
			dur.Round(time.Millisecond).String(), desc})
	}
	table(e.w, []string{"criterion", "top1 P/R/F1", "clauses", "debug time", "top predicate"}, rows)
	return nil
}

// ---------------------------------------------------------------------
// E4 — beam width + cleaner ablation

func runE4(e *env) error {
	f, err := intelSetup(e.rows, e.seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(e.w, "beam width sweep (subgroup discovery):")
	var rows [][]string
	for _, beam := range []int{1, 2, 4, 8, 16} {
		start := time.Now()
		dr, err := f.debug(core.Options{Subgroup: subgroup.Options{BeamWidth: beam}})
		if err != nil {
			return err
		}
		dur := time.Since(start)
		f1s := "0/0/0"
		if len(dr.Explanations) > 0 {
			matched := dr.Explanations[0].Pred.MatchingRows(f.res.Source, dr.F)
			p, r, f1 := f.truth.Score(matched, dr.F)
			f1s = fmt.Sprintf("%.2f/%.2f/%.2f", p, r, f1)
		}
		rows = append(rows, []string{fmt.Sprintf("%d", beam), f1s,
			fmt.Sprintf("%d", dr.Candidates), dur.Round(time.Millisecond).String()})
	}
	table(e.w, []string{"beam", "top1 P/R/F1", "candidates", "debug time"}, rows)

	// Cleaner ablation: pollute D' with random clean tuples, then
	// compare kmeans cleaning vs none.
	fmt.Fprintln(e.w, "\nD'-cleaning ablation (D' polluted with 30% random inliers):")
	F := f.res.Lineage(f.suspect)
	polluted := append([]int(nil), f.dprime...)
	added := 0
	for _, r := range F {
		if added >= len(f.dprime)*3/10 {
			break
		}
		if !f.truth.Label(r) {
			polluted = append(polluted, r)
			added++
		}
	}
	rows = nil
	for _, method := range []string{"none", "kmeans", "bayes"} {
		dr, err := core.Debug(core.DebugRequest{
			Result: f.res, AggItem: -1, Suspect: f.suspect,
			Examples: polluted, Metric: errmetric.TooHigh{C: 70},
			Opt: core.Options{CleanMethod: method},
		})
		if err != nil {
			return err
		}
		f1s := "0/0/0"
		if len(dr.Explanations) > 0 {
			matched := dr.Explanations[0].Pred.MatchingRows(f.res.Source, dr.F)
			p, r, f1 := f.truth.Score(matched, dr.F)
			f1s = fmt.Sprintf("%.2f/%.2f/%.2f", p, r, f1)
		}
		kept := fmt.Sprintf("%d → %d", len(polluted), len(dr.DPrime))
		rows = append(rows, []string{method, kept, f1s})
	}
	table(e.w, []string{"cleaner", "D' size (in→kept)", "top1 P/R/F1"}, rows)
	return nil
}

// ---------------------------------------------------------------------
// E5 — influence ranking quality

func runE5(e *env) error {
	f, err := intelSetup(e.rows, e.seed)
	if err != nil {
		return err
	}
	an, err := influence.Rank(f.res, f.suspect, 0, errmetric.TooHigh{C: 70}, influence.Options{})
	if err != nil {
		return err
	}
	var rows [][]string
	for _, k := range []int{50, 100, 500, 1000} {
		top := an.TopRows(k)
		p, r, f1 := f.truth.Score(top, an.F)
		rows = append(rows, []string{fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", len(top)),
			fmt.Sprintf("%.3f", p), fmt.Sprintf("%.3f", r), fmt.Sprintf("%.3f", f1)})
	}
	table(e.w, []string{"k", "returned", "precision", "recall", "F1"}, rows)

	// Influence mass separation: mean Δε of anomalous vs clean tuples.
	var anomSum, cleanSum float64
	var anomN, cleanN int
	for _, ti := range an.Influences {
		if f.truth.Label(ti.Row) {
			anomSum += ti.Delta
			anomN++
		} else {
			cleanSum += ti.Delta
			cleanN++
		}
	}
	fmt.Fprintf(e.w, "mean Δε: anomalous tuples=%.4f (n=%d), clean tuples=%.4f (n=%d)\n",
		anomSum/float64(maxInt(1, anomN)), anomN, cleanSum/float64(maxInt(1, cleanN)), cleanN)
	fmt.Fprintln(e.w, "paper shape: anomalous tuples dominate the top of the influence ranking")
	return nil
}

// ---------------------------------------------------------------------
// E6 — ranker ablation

func runE6(e *env) error {
	f, err := intelSetup(e.rows, e.seed)
	if err != nil {
		return err
	}
	configs := []struct {
		name string
		opt  core.Options
	}{
		{"full", core.Options{}},
		{"no-prune", core.Options{DisablePrune: true}},
		{"no-merge", core.Options{DisableMerge: true}},
		{"no-prune,no-merge", core.Options{DisablePrune: true, DisableMerge: true}},
		{"no-excess", core.Options{Weights: ranker.Weights{Err: 0.45, Acc: 0.45, Complexity: 0.04, Excess: 1e-9}}},
	}
	var rows [][]string
	for _, cfg := range configs {
		start := time.Now()
		dr, err := f.debug(cfg.opt)
		if err != nil {
			return err
		}
		dur := time.Since(start)
		f1s, desc := "0/0/0", "(none)"
		avgClauses := 0.0
		if len(dr.Explanations) > 0 {
			top := dr.Explanations[0]
			matched := top.Pred.MatchingRows(f.res.Source, dr.F)
			p, r, f1 := f.truth.Score(matched, dr.F)
			f1s = fmt.Sprintf("%.2f/%.2f/%.2f", p, r, f1)
			desc = top.Pred.String()
			for _, x := range dr.Explanations {
				avgClauses += float64(x.Complexity)
			}
			avgClauses /= float64(len(dr.Explanations))
		}
		rows = append(rows, []string{cfg.name, f1s,
			fmt.Sprintf("%.1f", avgClauses),
			dur.Round(time.Millisecond).String(), desc})
	}
	table(e.w, []string{"config", "top1 P/R/F1", "avg clauses", "time", "top predicate"}, rows)
	fmt.Fprintln(e.w, "expected: pruning shortens predicates; the excess term demotes delete-everything predicates")
	return nil
}

// ---------------------------------------------------------------------

func timings(dr *core.DebugResult) string {
	keys := make([]string, 0, len(dr.Timings))
	for k := range dr.Timings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, dr.Timings[k].Round(time.Millisecond)))
	}
	return strings.Join(parts, " ")
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
