package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/predicate"
)

// repl drives the full DBWipes loop interactively:
//
//	dbwipes> q SELECT day, sum(amount) AS total FROM donations WHERE candidate = 'McCain' GROUP BY day
//	dbwipes> s total < 0
//	dbwipes> m toolow(c=0)
//	dbwipes> x amount < 0
//	dbwipes> debug
//	dbwipes> clean 0
//	dbwipes> quit
type repl struct {
	db      *engine.DB
	out     io.Writer
	noPlot  bool
	res     *exec.Result
	sql     string
	suspect []int
	metric  errmetric.Metric
	exCond  string
	lastDbg *core.DebugResult
	applied []predicate.Predicate
}

const replHelp = `commands:
  q <sql>        run an aggregate query (cleaning predicates stay applied)
  s <cond>       select suspicious groups S by a condition over result columns
  m <spec>       set the error metric, e.g. toolow(c=0), toohigh(c=70), diff(c=70)
  x <cond>       select example tuples D' by a condition over source columns
  debug          compute the ranked predicates
  clean <i>      apply the i'th predicate (WHERE ... AND NOT pred) and re-run
  reset          drop all applied predicates and re-run
  show           re-plot the current result
  help           this text
  quit           exit`

func runREPL(db *engine.DB, in io.Reader, out io.Writer, noPlot bool) error {
	r := &repl{db: db, out: out, noPlot: noPlot}
	fmt.Fprintf(out, "DBWipes interactive session. Tables: %s\n%s\n", strings.Join(db.Names(), ", "), replHelp)
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(out, "dbwipes> ")
		if !scanner.Scan() {
			fmt.Fprintln(out)
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		var err error
		switch strings.ToLower(cmd) {
		case "q", "query":
			err = r.query(rest)
		case "s", "suspect":
			err = r.selectSuspect(rest)
		case "m", "metric":
			r.metric, err = errmetric.ParseSpec(rest)
			if err == nil {
				fmt.Fprintf(out, "metric: %s\n", r.metric)
			}
		case "x", "examples":
			r.exCond = rest
			fmt.Fprintf(out, "D' condition: %q\n", rest)
		case "debug":
			err = r.debug()
		case "clean":
			err = r.clean(rest)
		case "reset":
			r.applied = nil
			if r.sql != "" {
				err = r.query(r.sql)
			}
		case "show":
			if r.res != nil && !r.noPlot {
				fmt.Fprintln(out, plotResult(r.res, r.suspect))
			}
		case "help", "?":
			fmt.Fprintln(out, replHelp)
		case "quit", "exit", `\q`:
			return nil
		default:
			err = fmt.Errorf("unknown command %q (try help)", cmd)
		}
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		}
	}
}

func (r *repl) query(sql string) error {
	if sql == "" {
		return fmt.Errorf("usage: q <sql>")
	}
	stmt, res, err := runCleaned(r.db, sql, r.applied)
	if err != nil {
		return err
	}
	_ = stmt
	r.sql = sql
	r.res = res
	r.suspect = nil
	r.lastDbg = nil
	fmt.Fprintf(r.out, "%d groups\n", res.NumRows())
	if !r.noPlot {
		fmt.Fprintln(r.out, plotResult(res, nil))
	}
	return nil
}

func (r *repl) selectSuspect(cond string) error {
	if r.res == nil {
		return fmt.Errorf("run a query first")
	}
	if cond == "" {
		return fmt.Errorf("usage: s <condition over result columns>")
	}
	suspect, err := selectSuspect(r.res, cond)
	if err != nil {
		return err
	}
	r.suspect = suspect
	fmt.Fprintf(r.out, "S: %d groups match %q\n", len(suspect), cond)
	if !r.noPlot && len(suspect) > 0 {
		fmt.Fprintln(r.out, plotResult(r.res, suspect))
	}
	return nil
}

func (r *repl) debug() error {
	switch {
	case r.res == nil:
		return fmt.Errorf("run a query first")
	case len(r.suspect) == 0:
		return fmt.Errorf("select suspicious groups first (s <cond>)")
	case r.metric == nil:
		return fmt.Errorf("set an error metric first (m <spec>)")
	}
	var examples []int
	if r.exCond != "" {
		var err error
		examples, err = core.ExamplesWhere(r.res, r.suspect, r.exCond)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "D': %d example tuples\n", len(examples))
	}
	dr, err := core.Debug(core.DebugRequest{
		Result: r.res, AggItem: -1, Suspect: r.suspect,
		Examples: examples, Metric: r.metric,
	})
	if err != nil {
		return err
	}
	r.lastDbg = dr
	fmt.Fprintf(r.out, "ε = %.2f over %d lineage tuples\n", dr.Eps, len(dr.F))
	for i, e := range dr.Explanations {
		fmt.Fprintf(r.out, "  [%d] %s\n", i, e.Scored)
	}
	return nil
}

func (r *repl) clean(arg string) error {
	if r.lastDbg == nil {
		return fmt.Errorf("debug first")
	}
	i, err := strconv.Atoi(strings.TrimSpace(arg))
	if err != nil || i < 0 || i >= len(r.lastDbg.Explanations) {
		return fmt.Errorf("usage: clean <0..%d>", len(r.lastDbg.Explanations)-1)
	}
	pred := r.lastDbg.Explanations[i].Pred
	r.applied = append(r.applied, pred)
	if err := r.query(r.sql); err != nil {
		r.applied = r.applied[:len(r.applied)-1]
		return err
	}
	fmt.Fprintf(r.out, "applied NOT (%s); %d predicate(s) active\n", pred, len(r.applied))
	return nil
}
