// Command dbwipes-cli is the terminal version of the DBWipes loop: run
// an aggregate query, see the result as an ASCII scatterplot, select
// suspicious groups with a condition, debug, and apply a predicate —
// all in one invocation.
//
// Example (the paper's FEC walkthrough):
//
//	dbwipes-cli -dataset fec \
//	  -sql "SELECT day, sum(amount) AS total FROM donations WHERE candidate = 'McCain' GROUP BY day ORDER BY day" \
//	  -suspect "total < 0" -metric "toolow(c=0)" -examples "amount < 0" -clean 0
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/errmetric"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/predicate"
	"repro/internal/sqlparse"
	"repro/internal/viz"
)

func main() {
	dataset := flag.String("dataset", "intel", "intel, fec, or csv path via -csv")
	csvPath := flag.String("csv", "", "load this CSV as the table instead of a synthetic dataset")
	tableName := flag.String("table", "data", "table name for -csv")
	rows := flag.Int("rows", 100_000, "synthetic dataset size")
	seed := flag.Int64("seed", 1, "generator seed")
	sqlStr := flag.String("sql", "", "aggregate query (default: the dataset's demo query)")
	suspectCond := flag.String("suspect", "", "condition over result columns selecting S (e.g. \"total < 0\")")
	metricSpec := flag.String("metric", "", "error metric, e.g. toolow(c=0) or toohigh(c=70)")
	examplesCond := flag.String("examples", "", "condition over source columns selecting D' (e.g. \"amount < 0\")")
	clean := flag.Int("clean", -1, "apply the i'th ranked predicate and re-plot")
	noPlot := flag.Bool("noplot", false, "suppress ASCII plots")
	repl := flag.Bool("repl", false, "interactive session instead of one-shot flags")
	flag.Parse()

	db := engine.NewDB()
	switch {
	case *csvPath != "":
		t, err := engine.LoadCSVFile(*csvPath, *tableName)
		if err != nil {
			log.Fatalf("load csv: %v", err)
		}
		db.Register(t)
	case *dataset == "intel":
		t, _ := datasets.Intel(datasets.IntelConfig{Rows: *rows, Seed: *seed})
		db.Register(t)
		if *sqlStr == "" {
			*sqlStr = datasets.IntelWindowSQL
		}
	case *dataset == "fec":
		t, _ := datasets.FEC(datasets.FECConfig{Rows: *rows, Seed: *seed})
		db.Register(t)
		if *sqlStr == "" {
			*sqlStr = datasets.FECDailySQL("McCain")
		}
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}
	if *repl {
		if err := runREPL(db, os.Stdin, os.Stdout, *noPlot); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *sqlStr == "" {
		log.Fatal("-sql required")
	}

	res, err := exec.RunSQL(db, *sqlStr)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Printf("query: %s\n%d groups\n\n", *sqlStr, res.NumRows())
	if !*noPlot {
		fmt.Println(plotResult(res, nil))
	}
	if *suspectCond == "" {
		return
	}

	suspect, err := selectSuspect(res, *suspectCond)
	if err != nil {
		log.Fatalf("suspect: %v", err)
	}
	fmt.Printf("S: %d suspicious groups match %q\n", len(suspect), *suspectCond)
	if len(suspect) == 0 {
		os.Exit(1)
	}
	if !*noPlot {
		fmt.Println(plotResult(res, suspect))
	}
	if *metricSpec == "" {
		return
	}
	metric, err := errmetric.ParseSpec(*metricSpec)
	if err != nil {
		log.Fatalf("metric: %v", err)
	}
	var examples []int
	if *examplesCond != "" {
		examples, err = core.ExamplesWhere(res, suspect, *examplesCond)
		if err != nil {
			log.Fatalf("examples: %v", err)
		}
		fmt.Printf("D': %d example tuples match %q\n", len(examples), *examplesCond)
	}

	dr, err := core.Debug(core.DebugRequest{
		Result: res, AggItem: -1, Suspect: suspect,
		Examples: examples, Metric: metric,
	})
	if err != nil {
		log.Fatalf("debug: %v", err)
	}
	fmt.Printf("\nε = %.2f over %d lineage tuples; ranked predicates:\n", dr.Eps, len(dr.F))
	for i, e := range dr.Explanations {
		fmt.Printf("  [%d] %s\n", i, e.Scored)
	}
	if *clean < 0 || *clean >= len(dr.Explanations) {
		return
	}

	pred := dr.Explanations[*clean].Pred
	cleaned, err := core.CleanAndRequery(res, pred)
	if err != nil {
		log.Fatalf("clean: %v", err)
	}
	fmt.Printf("\nafter cleaning with NOT(%s):\n%s\n", pred, core.CleanedSQL(res.Stmt, pred))
	if !*noPlot {
		fmt.Println(plotResult(cleaned, nil))
	}
}

// runCleaned parses sql, appends NOT (p) for every applied predicate,
// and executes it.
func runCleaned(db *engine.DB, sql string, applied []predicate.Predicate) (*sqlparse.SelectStmt, *exec.Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	for _, p := range applied {
		stmt.Where = expr.And(stmt.Where, p.NegationExpr())
	}
	res, err := exec.Run(db, stmt)
	if err != nil {
		return nil, nil, err
	}
	return stmt, res, nil
}

func selectSuspect(res *exec.Result, cond string) ([]int, error) {
	e, err := sqlparse.ParseExpr(cond)
	if err != nil {
		return nil, err
	}
	if err := e.Resolve(res.Table.Schema()); err != nil {
		return nil, err
	}
	return res.SelectRows(func(row []engine.Value) bool {
		ok, err := expr.EvalBool(e, row)
		return err == nil && ok
	}), nil
}

// plotResult draws result col 0 vs col of the first aggregate.
func plotResult(res *exec.Result, suspect []int) string {
	if res.Table.NumRows() == 0 {
		return "(empty result)"
	}
	yCol := 1
	if ords := res.AggOrdinals(); len(ords) > 0 {
		yCol = ords[0]
	}
	if yCol >= res.Table.NumCols() {
		yCol = res.Table.NumCols() - 1
	}
	inS := make(map[int]bool, len(suspect))
	for _, s := range suspect {
		inS[s] = true
	}
	p := viz.Plot{
		XLabel: res.Table.Schema()[0].Name,
		YLabel: res.Table.Schema()[yCol].Name,
		Width:  100, Height: 22,
	}
	for r := 0; r < res.Table.NumRows(); r++ {
		xv, yv := res.Table.Value(r, 0), res.Table.Value(r, yCol)
		if xv.IsNull() || yv.IsNull() {
			continue
		}
		cls := 0
		if inS[r] {
			cls = 1
		}
		p.Points = append(p.Points, viz.Point{X: xv.Float(), Y: yv.Float(), Class: cls})
	}
	return p.ASCII()
}
